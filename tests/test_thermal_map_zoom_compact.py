"""Tests for thermal-map queries, the zoom (submodel) solver and the compact model."""

import numpy as np
import pytest

from repro.errors import AnalysisError, SolverError
from repro.geometry import Box, Layer, LayerStack, Rect
from repro.materials import COPPER, EPOXY, SILICON
from repro.thermal import (
    BoundaryConditions,
    CompactThermalModel,
    FaceCondition,
    HeatSource,
    MeshBuilder,
    SteadyStateSolver,
    ThermalMap,
    ZoomSolver,
    clip_sources_to_window,
)


def layered_stack(side_mm=6.0):
    footprint = Rect.from_size_mm(0.0, 0.0, side_mm, side_mm)
    stack = LayerStack(footprint)
    stack.add_layer(Layer(name="substrate", thickness=400e-6, material=EPOXY))
    stack.add_layer(Layer(name="die", thickness=200e-6, material=SILICON))
    stack.add_layer(Layer(name="lid", thickness=300e-6, material=COPPER))
    return stack


def solved_problem():
    stack = layered_stack()
    mesh = MeshBuilder(stack, base_cell_size_um=750.0, vertical_target_um=150.0).build()
    boundaries = BoundaryConditions.package_default(30.0, 2000.0)
    hotspot = HeatSource.from_rect(
        "hotspot", Rect.from_size_mm(2.5, 2.5, 1.0, 1.0), 400e-6, 450e-6, 4.0
    )
    background = HeatSource.from_rect(
        "background", Rect.from_size_mm(0.0, 0.0, 6.0, 6.0), 400e-6, 450e-6, 6.0
    )
    solver = SteadyStateSolver(mesh, boundaries)
    thermal_map = solver.solve([hotspot, background])
    return stack, boundaries, thermal_map, [hotspot, background]


class TestThermalMap:
    def test_shape_mismatch_rejected(self):
        stack = layered_stack()
        mesh = MeshBuilder(stack, base_cell_size_um=1500.0).build()
        with pytest.raises(AnalysisError):
            ThermalMap(mesh, np.zeros((2, 2, 2)))

    def test_average_between_extrema(self):
        _, _, thermal_map, _ = solved_problem()
        box = Box.from_rect(Rect.from_size_mm(2.0, 2.0, 2.0, 2.0), 0.0, 900e-6)
        low, high = thermal_map.extrema_over(box)
        average = thermal_map.average_over(box)
        assert low <= average <= high

    def test_hotspot_is_hotter_than_corner(self):
        _, _, thermal_map, _ = solved_problem()
        hot = thermal_map.temperature_at(3.0e-3, 3.0e-3, 420e-6)
        corner = thermal_map.temperature_at(0.2e-3, 0.2e-3, 420e-6)
        assert hot > corner

    def test_gradient_queries(self):
        _, _, thermal_map, _ = solved_problem()
        hot_box = Box.from_rect(Rect.from_size_mm(2.5, 2.5, 1.0, 1.0), 400e-6, 450e-6)
        cold_box = Box.from_rect(Rect.from_size_mm(0.0, 0.0, 1.0, 1.0), 400e-6, 450e-6)
        assert thermal_map.gradient_between(hot_box, cold_box) > 0.0
        whole = Box.from_rect(Rect.from_size_mm(0.0, 0.0, 6.0, 6.0), 400e-6, 450e-6)
        assert thermal_map.gradient_within(whole) >= thermal_map.gradient_between(
            hot_box, cold_box
        ) - 1e-9

    def test_query_outside_domain_raises(self):
        _, _, thermal_map, _ = solved_problem()
        outside = Box(1.0, 1.0, 1.0, 2.0, 2.0, 2.0)
        with pytest.raises(AnalysisError):
            thermal_map.average_over(outside)

    def test_hottest_point_near_hotspot(self):
        _, _, thermal_map, _ = solved_problem()
        x, y, z, temperature = thermal_map.hottest_point()
        assert 2.0e-3 <= x <= 4.0e-3
        assert 2.0e-3 <= y <= 4.0e-3
        assert temperature == pytest.approx(thermal_map.global_max())

    def test_summary_and_slices(self):
        _, _, thermal_map, _ = solved_problem()
        summary = thermal_map.summary()
        assert summary["max_c"] >= summary["mean_c"] >= summary["min_c"]
        plane = thermal_map.horizontal_slice(420e-6)
        assert plane.shape == thermal_map.temperatures_c.shape[:2]

    def test_sample_line_monotone_away_from_hotspot(self):
        _, _, thermal_map, _ = solved_problem()
        distances, values = thermal_map.sample_line(
            (3.0e-3, 3.0e-3, 420e-6), (0.2e-3, 3.0e-3, 420e-6), samples=15
        )
        assert distances[0] == 0.0
        assert values[0] >= values[-1]

    def test_average_by_boxes_and_ring_averages(self):
        _, _, thermal_map, _ = solved_problem()
        boxes = {
            "hot": Box.from_rect(Rect.from_size_mm(2.5, 2.5, 1.0, 1.0), 400e-6, 450e-6),
            "cold": Box.from_rect(Rect.from_size_mm(0.0, 0.0, 1.0, 1.0), 400e-6, 450e-6),
        }
        averages = thermal_map.average_by_boxes(boxes)
        assert averages["hot"] > averages["cold"]
        footprints = [Rect.from_size_mm(1.0 * i, 1.0, 0.5, 0.5) for i in range(4)]
        ring = thermal_map.averages_along_ring(footprints, 400e-6, 450e-6)
        assert ring.shape == (4,)


class TestZoomSolver:
    def test_zoom_agrees_with_coarse_on_averages(self):
        stack, boundaries, coarse_map, sources = solved_problem()
        zoom = ZoomSolver(stack, boundaries, cell_size_um=100.0, margin_um=500.0)
        region = Rect.from_size_mm(2.5, 2.5, 1.0, 1.0)
        result = zoom.solve(coarse_map, region, sources)
        fine_map = result.thermal_map
        box = Box.from_rect(region, 400e-6, 450e-6)
        coarse_average = coarse_map.average_over(box)
        fine_average = fine_map.average_over(box)
        # The refined solution should stay within a few degrees of the coarse
        # one (it adds local detail, it does not change the bulk picture).
        assert fine_average == pytest.approx(coarse_average, abs=3.0)

    def test_zoom_resolves_local_peak(self):
        stack, boundaries, coarse_map, sources = solved_problem()
        zoom = ZoomSolver(stack, boundaries, cell_size_um=50.0, margin_um=500.0)
        region = Rect.from_size_mm(2.5, 2.5, 1.0, 1.0)
        result = zoom.solve(coarse_map, region, sources)
        box = Box.from_rect(region, 400e-6, 450e-6)
        assert result.thermal_map.max_over(box) >= coarse_map.max_over(box) - 0.5

    def test_zoom_window_cache_reused(self):
        stack, boundaries, coarse_map, sources = solved_problem()
        zoom = ZoomSolver(stack, boundaries, cell_size_um=100.0, margin_um=400.0)
        region = Rect.from_size_mm(2.5, 2.5, 1.0, 1.0)
        zoom.solve(coarse_map, region, sources)
        assert len(zoom._window_cache) == 1
        zoom.solve(coarse_map, region, [sources[0].scaled(0.5), sources[1]])
        assert len(zoom._window_cache) == 1

    def test_vertical_range_zoom(self):
        stack, boundaries, coarse_map, sources = solved_problem()
        zoom = ZoomSolver(
            stack,
            boundaries,
            cell_size_um=100.0,
            margin_um=400.0,
            vertical_range=(400e-6, 600e-6),
        )
        region = Rect.from_size_mm(2.5, 2.5, 1.0, 1.0)
        result = zoom.solve(coarse_map, region, sources)
        assert result.thermal_map.mesh.z_ticks[0] == pytest.approx(400e-6)
        assert result.thermal_map.mesh.z_ticks[-1] == pytest.approx(600e-6)
        box = Box.from_rect(region, 400e-6, 450e-6)
        assert result.thermal_map.average_over(box) == pytest.approx(
            coarse_map.average_over(box), abs=3.0
        )

    def test_invalid_parameters(self):
        stack, boundaries, _, _ = solved_problem()
        with pytest.raises(SolverError):
            ZoomSolver(stack, boundaries, cell_size_um=0.0)
        with pytest.raises(SolverError):
            ZoomSolver(stack, boundaries, margin_um=-1.0)
        with pytest.raises(SolverError):
            ZoomSolver(stack, boundaries, vertical_range=(1.0, 0.5))

    def test_clip_sources_to_window(self):
        window = Box(0.0, 0.0, 0.0, 1.0e-3, 1.0e-3, 1.0e-3)
        inside = HeatSource.from_rect(
            "inside", Rect.from_size_um(100.0, 100.0, 100.0, 100.0), 0.0, 1e-4, 1.0
        )
        outside = HeatSource.from_rect(
            "outside", Rect.from_size_mm(5.0, 5.0, 1.0, 1.0), 0.0, 1e-4, 1.0
        )
        straddling = HeatSource.from_rect(
            "straddling", Rect.from_size_mm(0.5, 0.0, 1.0, 1.0), 0.0, 1e-4, 1.0
        )
        clipped = clip_sources_to_window([inside, outside, straddling], window)
        names = {source.name for source in clipped}
        assert names == {"inside", "straddling"}
        straddling_clipped = next(s for s in clipped if s.name == "straddling")
        assert straddling_clipped.power_w == pytest.approx(0.5, rel=1e-6)


class TestCompactModel:
    def test_resistance_orders_and_estimate(self):
        stack = layered_stack()
        model = CompactThermalModel(stack, ambient_c=30.0, top_coefficient_w_m2k=2000.0)
        result = model.estimate(10.0, source_layer="die")
        assert result.junction_temperature_c > 30.0
        assert result.effective_resistance_k_per_w == pytest.approx(
            result.resistance_up_k_per_w
        )

    def test_bottom_path_reduces_resistance(self):
        stack = layered_stack()
        single = CompactThermalModel(stack, 30.0, 2000.0)
        dual = CompactThermalModel(stack, 30.0, 2000.0, bottom_coefficient_w_m2k=200.0)
        assert (
            dual.estimate(10.0, "die").effective_resistance_k_per_w
            < single.estimate(10.0, "die").effective_resistance_k_per_w
        )

    def test_report_contains_layers_above_source(self):
        stack = layered_stack()
        model = CompactThermalModel(stack, 30.0, 2000.0)
        report = model.resistance_report("die")
        assert set(report) == {"die", "lid", "convection"}

    def test_compact_is_close_to_fvm_for_uniform_heating(self):
        # For a laterally uniform problem the 1D ladder and the 3D FVM agree.
        stack = layered_stack()
        mesh = MeshBuilder(stack, base_cell_size_um=1500.0, vertical_target_um=150.0).build()
        boundaries = BoundaryConditions.package_default(30.0, 2000.0)
        source = HeatSource.from_rect(
            "uniform", stack.footprint, 400e-6, 450e-6, 8.0
        )
        fvm = SteadyStateSolver(mesh, boundaries).solve([source])
        fvm_temperature = fvm.average_over(
            Box.from_rect(stack.footprint, 400e-6, 450e-6)
        )
        compact = CompactThermalModel(stack, 30.0, 2000.0).estimate(8.0, "die")
        assert compact.junction_temperature_c == pytest.approx(fvm_temperature, abs=1.5)

    def test_invalid_inputs(self):
        stack = layered_stack()
        with pytest.raises(SolverError):
            CompactThermalModel(stack, 30.0, 0.0)
        model = CompactThermalModel(stack, 30.0, 2000.0)
        with pytest.raises(SolverError):
            model.estimate(-1.0, "die")
        with pytest.raises(SolverError):
            model.estimate(1.0, "missing_layer")
