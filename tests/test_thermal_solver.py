"""Tests for the finite-volume assembly, the steady-state solver and its
validation against analytic conduction problems."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.geometry import Layer, LayerStack, Rect
from repro.materials import COPPER, SILICON
from repro.thermal import (
    BoundaryConditions,
    FaceCondition,
    HeatSource,
    MeshBuilder,
    SteadyStateSolver,
    assemble_operator,
    assemble_system,
    boundary_rhs,
    boundary_signature,
    power_density_field,
)
from repro.thermal.validation import (
    fixed_temperature_gradient_case,
    two_layer_slab_case,
    uniform_slab_case,
)


def slab_problem(side_mm=5.0, thickness_um=400.0, cells_um=1000.0):
    footprint = Rect.from_size_mm(0.0, 0.0, side_mm, side_mm)
    stack = LayerStack(footprint)
    stack.add_layer(Layer(name="bulk", thickness=thickness_um * 1e-6, material=SILICON))
    mesh = MeshBuilder(stack, base_cell_size_um=cells_um, vertical_target_um=100.0).build()
    boundaries = BoundaryConditions()
    boundaries.set_face("z_max", FaceCondition.convective(25.0, 1500.0))
    source = HeatSource.from_rect("sheet", footprint, 0.0, 10e-6, 5.0)
    return mesh, boundaries, source, footprint


class TestAssembly:
    def test_matrix_is_symmetric(self):
        mesh, boundaries, source, _ = slab_problem()
        operator = assemble_operator(mesh, boundaries)
        difference = operator.matrix - operator.matrix.T
        assert abs(difference).max() < 1e-9

    def test_all_adiabatic_rejected(self):
        mesh, _, _, _ = slab_problem()
        with pytest.raises(SolverError, match="singular"):
            assemble_operator(mesh, BoundaryConditions())

    def test_boundary_signature_distinguishes_structures(self):
        convective = BoundaryConditions.package_default(25.0, 1000.0)
        dirichlet = BoundaryConditions()
        dirichlet.set_face("z_max", FaceCondition.fixed_temperature(25.0))
        assert boundary_signature(convective) != boundary_signature(dirichlet)

    def test_boundary_rhs_requires_same_structure(self):
        mesh, boundaries, _, _ = slab_problem()
        operator = assemble_operator(mesh, boundaries)
        other = BoundaryConditions()
        other.set_face("z_max", FaceCondition.fixed_temperature(10.0))
        with pytest.raises(SolverError, match="structurally different"):
            boundary_rhs(operator, other)

    def test_boundary_rhs_scales_with_ambient(self):
        mesh, boundaries, _, _ = slab_problem()
        operator = assemble_operator(mesh, boundaries)
        hot = BoundaryConditions()
        hot.set_face("z_max", FaceCondition.convective(50.0, 1500.0))
        rhs_cold = boundary_rhs(operator, boundaries)
        rhs_hot = boundary_rhs(operator, hot)
        assert rhs_hot.sum() == pytest.approx(rhs_cold.sum() * 2.0, rel=1e-9)

    def test_assemble_system_shape_check(self):
        mesh, boundaries, _, _ = slab_problem()
        with pytest.raises(SolverError):
            assemble_system(mesh, np.zeros((2, 2, 2)), boundaries)

    def test_assembled_system_solution_matches_solver(self):
        mesh, boundaries, source, _ = slab_problem()
        power = power_density_field(mesh, [source])
        system = assemble_system(mesh, power, boundaries)
        from scipy.sparse.linalg import spsolve

        direct = spsolve(system.matrix, system.rhs)
        solver = SteadyStateSolver(mesh, boundaries)
        thermal_map = solver.solve([source])
        assert np.allclose(direct.reshape(mesh.shape), thermal_map.temperatures_c, atol=1e-8)


class TestSteadyStateSolver:
    def test_energy_balance_through_convective_face(self):
        mesh, boundaries, source, footprint = slab_problem()
        solver = SteadyStateSolver(mesh, boundaries)
        thermal_map = solver.solve([source])
        # Heat leaving through the top face must equal the injected power.
        top = thermal_map.temperatures_c[:, :, -1]
        areas = np.outer(mesh.dx, mesh.dy)
        half_resistance = mesh.dz[-1] / (2.0 * mesh.k_vertical[:, :, -1])
        conductance = 1.0 / (half_resistance / areas + 1.0 / (1500.0 * areas))
        outflow = (conductance * (top - 25.0)).sum()
        assert outflow == pytest.approx(source.power_w, rel=1e-6)

    def test_temperatures_above_ambient_with_positive_power(self):
        mesh, boundaries, source, _ = slab_problem()
        thermal_map = SteadyStateSolver(mesh, boundaries).solve([source])
        assert thermal_map.global_min() >= 25.0 - 1e-9

    def test_zero_power_gives_ambient_everywhere(self):
        mesh, boundaries, _, _ = slab_problem()
        thermal_map = SteadyStateSolver(mesh, boundaries).solve([])
        assert thermal_map.global_max() == pytest.approx(25.0, abs=1e-6)
        assert thermal_map.global_min() == pytest.approx(25.0, abs=1e-6)

    def test_superposition_of_sources(self):
        # Steady conduction is linear: solving both sources equals the sum of
        # the individual temperature rises.
        mesh, boundaries, _, footprint = slab_problem()
        first = HeatSource.from_rect("a", Rect.from_size_mm(0.5, 0.5, 1.0, 1.0), 0.0, 50e-6, 2.0)
        second = HeatSource.from_rect("b", Rect.from_size_mm(3.0, 3.0, 1.0, 1.0), 0.0, 50e-6, 3.0)
        solver = SteadyStateSolver(mesh, boundaries)
        both = solver.solve([first, second]).temperatures_c
        only_first = solver.solve([first]).temperatures_c
        only_second = solver.solve([second]).temperatures_c
        ambient = 25.0
        assert np.allclose(
            both - ambient, (only_first - ambient) + (only_second - ambient), atol=1e-6
        )

    def test_doubling_power_doubles_rise(self):
        mesh, boundaries, source, _ = slab_problem()
        solver = SteadyStateSolver(mesh, boundaries)
        single = solver.solve([source]).temperatures_c - 25.0
        double = solver.solve([source.scaled(2.0)]).temperatures_c - 25.0
        assert np.allclose(double, 2.0 * single, rtol=1e-9, atol=1e-9)

    def test_factorization_is_reused_across_solves(self):
        mesh, boundaries, source, _ = slab_problem()
        solver = SteadyStateSolver(mesh, boundaries)
        solver.solve([source])
        assert solver.last_diagnostics.factorization_reused is False
        solver.solve([source.scaled(0.5)])
        assert solver.last_diagnostics.factorization_reused is True

    def test_set_boundaries_with_same_structure_keeps_factorization(self):
        mesh, boundaries, source, _ = slab_problem()
        solver = SteadyStateSolver(mesh, boundaries)
        solver.solve([source])
        hotter = BoundaryConditions()
        hotter.set_face("z_max", FaceCondition.convective(40.0, 1500.0))
        solver.set_boundaries(hotter)
        thermal_map = solver.solve([source])
        assert solver.last_diagnostics.factorization_reused is True
        assert thermal_map.global_min() >= 40.0 - 1e-9

    def test_set_boundaries_with_new_structure_rebuilds(self):
        mesh, boundaries, source, _ = slab_problem()
        solver = SteadyStateSolver(mesh, boundaries)
        solver.solve([source])
        dirichlet = BoundaryConditions()
        dirichlet.set_face("z_max", FaceCondition.fixed_temperature(30.0))
        solver.set_boundaries(dirichlet)
        thermal_map = solver.solve([source])
        assert solver.last_diagnostics.factorization_reused is False
        assert thermal_map.global_min() >= 30.0 - 1e-6

    def test_diagnostics_summary(self):
        mesh, boundaries, source, _ = slab_problem()
        solver = SteadyStateSolver(mesh, boundaries)
        solver.solve([source])
        summary = solver.last_diagnostics.summary()
        assert "direct" in summary
        assert "5.000 W" in summary

    def test_invalid_constructor_arguments(self):
        mesh, boundaries, _, _ = slab_problem()
        with pytest.raises(SolverError):
            SteadyStateSolver(mesh, boundaries, direct_cell_limit=0)
        with pytest.raises(SolverError):
            SteadyStateSolver(mesh, boundaries, rtol=0.0)


class TestSolveMany:
    def source_sets(self, footprint):
        first = HeatSource.from_rect("a", Rect.from_size_mm(0.5, 0.5, 1.0, 1.0), 0.0, 50e-6, 2.0)
        second = HeatSource.from_rect("b", Rect.from_size_mm(3.0, 3.0, 1.0, 1.0), 0.0, 50e-6, 3.0)
        sheet = HeatSource.from_rect("sheet", footprint, 0.0, 10e-6, 5.0)
        return [[first], [second], [first, second], [sheet]]

    def test_batch_matches_sequential_solves(self):
        mesh, boundaries, _, footprint = slab_problem()
        sets = self.source_sets(footprint)
        sequential = [
            SteadyStateSolver(mesh, boundaries).solve(sources).temperatures_c
            for sources in sets
        ]
        batch = SteadyStateSolver(mesh, boundaries).solve_many(sets)
        assert len(batch) == len(sets)
        for expected, thermal_map in zip(sequential, batch):
            assert np.allclose(thermal_map.temperatures_c, expected, atol=1e-9)

    def test_factorises_exactly_once(self, monkeypatch):
        import repro.thermal.factorization as factorization_module

        mesh, boundaries, _, footprint = slab_problem()
        calls = []
        original = factorization_module.splu

        def counting_splu(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(factorization_module, "splu", counting_splu)
        factorization_module.clear_factorization_cache()
        solver = SteadyStateSolver(mesh, boundaries)
        solver.solve_many(self.source_sets(footprint))
        assert len(calls) == 1
        # A second solver assembling the identical system is served by the
        # shared content-keyed cache: still exactly one factorisation.
        SteadyStateSolver(mesh, boundaries).solve_many(self.source_sets(footprint))
        assert len(calls) == 1

    def test_diagnostics_per_column(self):
        mesh, boundaries, _, footprint = slab_problem()
        solver = SteadyStateSolver(mesh, boundaries)
        sets = self.source_sets(footprint)
        batch = solver.solve_many(sets)
        assert len(batch.diagnostics) == len(sets)
        expected_powers = [2.0, 3.0, 5.0, 5.0]
        for column, (diag, power) in enumerate(zip(batch.diagnostics, expected_powers)):
            assert diag.method == "direct"
            assert diag.total_power_w == pytest.approx(power, rel=1e-9)
            assert diag.residual_norm < 1e-6
            assert diag.factorization_reused is (column > 0)
            assert diag.max_temperature_c == pytest.approx(
                batch.maps[column].global_max(), abs=1e-12
            )
        # A second batch reuses the factorisation from the first one.
        again = solver.solve_many(sets[:1])
        assert again.diagnostics[0].factorization_reused is True

    def test_empty_batch(self):
        mesh, boundaries, _, _ = slab_problem()
        batch = SteadyStateSolver(mesh, boundaries).solve_many([])
        assert len(batch) == 0 and batch.diagnostics == []

    def test_iterative_fallback_matches_direct(self):
        mesh, boundaries, _, footprint = slab_problem()
        sets = self.source_sets(footprint)
        direct = SteadyStateSolver(mesh, boundaries).solve_many(sets)
        iterative_solver = SteadyStateSolver(mesh, boundaries, direct_cell_limit=1)
        iterative = iterative_solver.solve_many(sets)
        for diag in iterative.diagnostics:
            assert diag.method == "ilu_cg"
        for direct_map, iterative_map in zip(direct.maps, iterative.maps):
            assert np.allclose(
                iterative_map.temperatures_c, direct_map.temperatures_c, atol=1e-4
            )

    def test_iterative_preconditioner_reused_across_solves(self):
        mesh, boundaries, source, _ = slab_problem()
        solver = SteadyStateSolver(mesh, boundaries, direct_cell_limit=1)
        solver.solve([source])
        first = solver.last_diagnostics
        assert first.method == "ilu_cg" and first.factorization_reused is False
        solver.solve([source])
        second = solver.last_diagnostics
        assert second.method == "ilu_cg" and second.factorization_reused is True

    def test_iterative_non_convergence_raises(self, monkeypatch):
        import repro.thermal.solver as solver_module

        mesh, boundaries, source, _ = slab_problem()
        solver = SteadyStateSolver(mesh, boundaries, direct_cell_limit=1)

        # An exhausted iteration budget (scipy reports it as info > 0) must
        # surface as a SolverError, not as silently wrong temperatures.
        def exhausted_cg(matrix, rhs, **kwargs):
            return np.zeros_like(rhs), 20_000

        monkeypatch.setattr(solver_module, "cg", exhausted_cg)
        with pytest.raises(SolverError, match="failed to converge"):
            solver.solve([source])

    def test_solve_delegates_to_batch_path(self):
        mesh, boundaries, source, _ = slab_problem()
        solver = SteadyStateSolver(mesh, boundaries)
        thermal_map = solver.solve([source])
        assert solver.last_diagnostics.factorization_reused is False
        batch_map = SteadyStateSolver(mesh, boundaries).solve_many([[source]]).maps[0]
        assert np.array_equal(thermal_map.temperatures_c, batch_map.temperatures_c)


class TestAnalyticValidation:
    def test_uniform_slab_matches_analytic(self):
        case = uniform_slab_case()
        assert case.relative_error < 0.02

    def test_two_layer_slab_matches_analytic(self):
        case = two_layer_slab_case()
        assert case.relative_error < 0.02

    def test_linear_profile_between_fixed_temperatures(self):
        quarter, three_quarter = fixed_temperature_gradient_case()
        assert quarter.absolute_error_c < 0.05
        assert three_quarter.absolute_error_c < 0.05

    def test_mesh_refinement_reduces_error(self):
        coarse = uniform_slab_case(cell_size_um=2500.0)
        fine = uniform_slab_case(cell_size_um=500.0)
        assert fine.relative_error <= coarse.relative_error + 1e-6
