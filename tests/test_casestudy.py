"""Tests for the SCC-like case study: package stack, floorplan, placement scenarios."""

import pytest

from repro.casestudy import (
    SccPackageParameters,
    build_oni_ring_scenario,
    build_scc_architecture,
    build_scc_floorplan,
    build_scc_stack,
    build_standard_scenarios,
)
from repro.config import SimulationSettings
from repro.errors import ConfigurationError
from repro.geometry import rectangle_perimeter_length
from repro.oni import OniPowerConfig


@pytest.fixture(scope="module")
def architecture():
    return build_scc_architecture(
        settings=SimulationSettings(
            oni_cell_size_um=400.0, die_cell_size_um=3000.0, zoom_cell_size_um=25.0
        )
    )


class TestSccPackage:
    def test_floorplan_has_24_tiles_and_infrastructure(self):
        floorplan = build_scc_floorplan()
        assert len(floorplan.instances_of_kind("tile")) == 24
        assert len(floorplan.instances_of_kind("memory_controller")) == 4
        assert len(floorplan.instances_of_kind("system_interface")) == 1

    def test_floorplan_without_infrastructure(self):
        params = SccPackageParameters(include_infrastructure=False)
        floorplan = build_scc_floorplan(params)
        assert len(floorplan) == 24

    def test_die_dimensions_match_scc(self):
        floorplan = build_scc_floorplan()
        assert floorplan.outline.width == pytest.approx(26.5e-3)
        assert floorplan.outline.height == pytest.approx(21.4e-3)

    def test_stack_layers_follow_figure7(self):
        stack = build_scc_stack()
        names = [layer.name for layer in stack]
        assert names.index("beol") < names.index("optical_layer")
        assert names.index("optical_layer") < names.index("copper_lid")
        assert names[0] == "substrate"
        assert names[-1] == "copper_lid"
        # Figure 7 thicknesses.
        optical = stack.layer("optical_layer")
        assert optical.thickness == pytest.approx(4.0e-6)
        assert stack.layer("tim").thickness == pytest.approx(75.0e-6)
        assert stack.layer("copper_lid").thickness == pytest.approx(2.0e-3)

    def test_architecture_z_ranges_are_ordered(self, architecture):
        electrical = architecture.electrical_z_range()
        optical = architecture.optical_z_range()
        assert electrical[1] <= optical[0]
        zoom_low, zoom_high = architecture.zoom_vertical_range()
        assert zoom_low < optical[0] < optical[1] < zoom_high

    def test_boundary_conditions_use_settings(self, architecture):
        boundaries = architecture.boundary_conditions()
        top = boundaries.face("z_max")
        assert top.kind == "convective"
        assert top.ambient_c == architecture.settings.ambient_temperature_c

    def test_mesh_builder_respects_refinements(self, architecture):
        coarse = architecture.build_mesh()
        scenario = build_oni_ring_scenario(architecture, 18.0, oni_count=6)
        refined = architecture.build_mesh(oni_footprints=scenario.oni_footprints)
        assert refined.n_cells > coarse.n_cells

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SccPackageParameters(die_width_mm=-1.0)
        with pytest.raises(ConfigurationError):
            SccPackageParameters(tile_columns=0)
        with pytest.raises(ConfigurationError):
            SccPackageParameters(bonding_tsv_copper_fraction=2.0)


class TestScenarios:
    def test_ring_length_matches_request(self, architecture):
        scenario = build_oni_ring_scenario(architecture, 32.4, oni_count=12)
        assert rectangle_perimeter_length(scenario.ring_rect) == pytest.approx(32.4e-3)
        assert scenario.ring.total_length_m == pytest.approx(32.4e-3)
        assert scenario.oni_count == 12

    def test_onis_lie_inside_die(self, architecture):
        scenario = build_oni_ring_scenario(architecture, 46.8, oni_count=24)
        die = architecture.die_rect
        for oni in scenario.onis:
            assert die.contains_rect(oni.footprint), oni.name

    def test_oni_names_match_ring_nodes(self, architecture):
        scenario = build_oni_ring_scenario(architecture, 18.0, oni_count=8)
        assert sorted(o.name for o in scenario.onis) == sorted(scenario.ring.node_names)

    def test_standard_scenarios_lengths(self, architecture):
        scenarios = build_standard_scenarios(architecture, oni_count=8)
        lengths = sorted(s.ring_length_mm for s in scenarios.values())
        assert lengths == [18.0, 32.4, 46.8]

    def test_scenario_power_reconfiguration(self, architecture):
        scenario = build_oni_ring_scenario(architecture, 18.0, oni_count=8)
        powered = scenario.with_power(OniPowerConfig(vcsel_power_w=6.0e-3, heater_power_w=1.8e-3))
        assert powered.total_optical_power_w() == pytest.approx(
            8 * 16 * (6.0e-3 + 1.8e-3)
        )
        assert powered.total_driver_power_w() == pytest.approx(8 * 16 * 6.0e-3)

    def test_oni_lookup(self, architecture):
        scenario = build_oni_ring_scenario(architecture, 18.0, oni_count=8)
        assert scenario.oni_by_name("oni_03").name == "oni_03"
        with pytest.raises(ConfigurationError):
            scenario.oni_by_name("oni_99")

    def test_too_long_ring_rejected(self, architecture):
        with pytest.raises(ConfigurationError, match="does not fit"):
            build_oni_ring_scenario(architecture, 200.0, oni_count=8)

    def test_invalid_arguments(self, architecture):
        with pytest.raises(ConfigurationError):
            build_oni_ring_scenario(architecture, -1.0, oni_count=8)
        with pytest.raises(ConfigurationError):
            build_oni_ring_scenario(architecture, 18.0, oni_count=1)
