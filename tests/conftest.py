"""Shared fixtures for the heavier (flow-level) tests.

The fixtures use deliberately coarse mesh settings and small ONI counts so
the full test suite stays fast; the benchmarks exercise the paper-scale
configurations.
"""

import pytest

from repro.activity import uniform_activity
from repro.casestudy import build_oni_ring_scenario, build_scc_architecture
from repro.config import SimulationSettings
from repro.methodology import ThermalAwareDesignFlow


COARSE_SETTINGS = SimulationSettings(
    oni_cell_size_um=400.0,
    die_cell_size_um=3000.0,
    zoom_cell_size_um=25.0,
    ambient_temperature_c=35.0,
)


@pytest.fixture(scope="session")
def coarse_architecture():
    """SCC architecture meshed coarsely (shared across flow tests)."""
    return build_scc_architecture(settings=COARSE_SETTINGS)


@pytest.fixture(scope="session")
def small_scenario(coarse_architecture):
    """Six ONIs on an 18 mm ring."""
    return build_oni_ring_scenario(coarse_architecture, ring_length_mm=18.0, oni_count=6)


@pytest.fixture(scope="session")
def small_flow(coarse_architecture, small_scenario):
    """Design flow over the small scenario (mesh/factorisation shared)."""
    return ThermalAwareDesignFlow(coarse_architecture, small_scenario)


@pytest.fixture(scope="session")
def uniform_25w(coarse_architecture):
    """Uniform 25 W chip activity on the coarse architecture."""
    return uniform_activity(coarse_architecture.floorplan, 25.0)
