"""Telemetry subsystem contract: spans, metrics and their merge algebra.

Pins the properties the campaign layer builds on:

* spans nest through the contextvar correctly — per thread and per asyncio
  task — and the disabled switch hands back one shared no-op object;
* :class:`~repro.telemetry.Histogram` and
  :class:`~repro.telemetry.MetricsRegistry` merges are associative and
  permutation-invariant (randomized with pinned seeds), so per-worker
  payloads fold into identical campaign totals whatever the executor's
  completion order was;
* collector payloads round-trip through JSON onto the wall-clock axis and
  render as valid Chrome trace events;
* :class:`~repro.methodology.EngineStats` keeps its historical surface as a
  thin view over a registry.
"""

import asyncio
import json
import pickle
import random
import threading

import pytest

from repro import telemetry
from repro.errors import ConfigurationError
from repro.methodology import EngineStats
from repro.telemetry import (
    BUCKET_COUNT,
    Histogram,
    MetricsRegistry,
    SpanRecord,
    aggregate_spans,
    bucket_index,
    bucket_upper_s,
    chrome_document,
    payload_spans,
    profile_tree,
    trace_events,
)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends with the tracer off and empty."""
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


#: Latency samples that are exact in binary (multiples of 2**-10 s), so
#: histogram totals are permutation-invariant without float tolerance.
def exact_samples(rng, count):
    return [rng.randrange(1, 4096) * 2.0**-10 for _ in range(count)]


class TestSpans:
    def test_disabled_span_is_the_shared_noop(self):
        assert telemetry.span("a") is telemetry.span("b", attr=1)
        with telemetry.span("a") as sp:
            assert sp.set(x=1) is sp
        assert telemetry.global_spans() == []

    def test_enabled_scope_restores_previous_state(self):
        assert not telemetry.is_enabled()
        with telemetry.enabled_scope(True):
            assert telemetry.is_enabled()
            with telemetry.enabled_scope(False):
                assert not telemetry.is_enabled()
            assert telemetry.is_enabled()
        assert not telemetry.is_enabled()

    def test_spans_nest_by_parent_id(self):
        telemetry.enable()
        with telemetry.span("outer") as outer:
            with telemetry.span("inner") as inner:
                pass
        records = {record.name: record for record in telemetry.global_spans()}
        assert records["inner"].parent_id == outer.span_id
        assert records["outer"].parent_id is None
        assert records["inner"].duration_ns <= records["outer"].duration_ns
        assert inner.span_id != outer.span_id

    def test_sibling_threads_do_not_nest_into_each_other(self):
        telemetry.enable()
        barrier = threading.Barrier(2)

        def work(name):
            barrier.wait()
            with telemetry.span(name):
                barrier.wait()

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for record in telemetry.global_spans():
            assert record.parent_id is None, record

    def test_asyncio_tasks_nest_independently(self):
        telemetry.enable()

        async def leaf(name):
            with telemetry.span(name):
                await asyncio.sleep(0)

        async def main():
            with telemetry.span("root"):
                await asyncio.gather(leaf("a"), leaf("b"))

        asyncio.run(main())
        records = {record.name: record for record in telemetry.global_spans()}
        root_id = records["root"].span_id
        assert records["a"].parent_id == root_id
        assert records["b"].parent_id == root_id

    def test_set_attaches_attributes_mid_span(self):
        telemetry.enable()
        with telemetry.span("solve", mesh="abc") as sp:
            sp.set(method="rom")
        (record,) = telemetry.global_spans()
        assert record.attrs == {"mesh": "abc", "method": "rom"}

    def test_traced_decorator_is_late_binding(self):
        @telemetry.traced("work")
        def work():
            return 7

        assert work() == 7
        assert telemetry.global_spans() == []
        telemetry.enable()
        assert work() == 7
        assert [record.name for record in telemetry.global_spans()] == ["work"]

    def test_metric_shortcuts_are_noops_while_disabled(self):
        telemetry.count("n")
        telemetry.observe("h", 0.5)
        telemetry.gauge("g", 2.0)
        assert len(telemetry.global_registry()) == 0
        telemetry.enable()
        telemetry.count("n", 3)
        telemetry.observe("h", 0.5)
        telemetry.gauge("g", 2.0)
        registry = telemetry.global_registry()
        assert registry.counter_value("n") == 3
        assert registry.histogram("h").count == 1
        assert registry.gauge_value("g") == 2.0

    def test_span_record_round_trips(self):
        record = SpanRecord("n", 4, 2, 100, 50, {"k": "v"}, 9, 7)
        clone = SpanRecord.from_dict(
            json.loads(json.dumps(record.to_dict()))
        )
        assert clone.to_dict() == record.to_dict()
        assert clone.duration_s == 5e-8


class TestCollector:
    def test_collector_captures_and_global_buffer_stays_clean(self):
        telemetry.enable()
        with telemetry.collect() as collector:
            with telemetry.span("inside"):
                telemetry.count("kernel.calls")
        with telemetry.span("outside"):
            pass
        assert [r.name for r in collector.spans] == ["inside"]
        assert collector.registry.counter_value("kernel.calls") == 1
        assert [r.name for r in telemetry.global_spans()] == ["outside"]
        assert telemetry.global_registry().counter_value("kernel.calls") == 0

    def test_payload_round_trip_onto_wall_clock(self):
        telemetry.enable()
        with telemetry.collect() as collector:
            with telemetry.span("a"):
                with telemetry.span("b"):
                    pass
        payload = json.loads(collector.to_json())
        spans = payload_spans(payload)
        assert {record["name"] for record in spans} == {"a", "b"}
        for record in spans:
            assert record["dur_us"] == record["duration_ns"] / 1e3
        by_name = {record["name"]: record for record in spans}
        # b starts after a on the common wall-clock axis.
        assert by_name["b"]["ts_us"] >= by_name["a"]["ts_us"]

    def test_chrome_export_is_valid_and_sorted(self):
        telemetry.enable()
        with telemetry.collect() as collector:
            for name in ("x", "y"):
                with telemetry.span(name, flavour=name):
                    pass
        spans = payload_spans(collector.to_payload())
        document = chrome_document(spans)
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert [event["ph"] for event in events] == ["X", "X"]
        assert events == sorted(
            events, key=lambda e: (e["ts"], e["pid"], e["tid"])
        )
        assert events[0]["args"] == {"flavour": events[0]["name"]}
        json.dumps(document)  # JSON-serialisable end to end

    def test_profile_tree_folds_by_parent_chain(self):
        telemetry.enable()
        with telemetry.collect() as collector:
            with telemetry.span("root"):
                for _ in range(3):
                    with telemetry.span("child"):
                        pass
        tree = profile_tree(payload_spans(collector.to_payload()))
        lines = tree.splitlines()
        assert lines[0].startswith("root")
        assert "  child" in lines[1]
        assert "3x" in lines[1]
        assert profile_tree([]) == "(no spans recorded)"

    def test_aggregate_spans_sorted_by_name(self):
        telemetry.enable()
        with telemetry.collect() as collector:
            for name in ("b", "a", "b"):
                with telemetry.span(name):
                    pass
        aggregates = aggregate_spans(payload_spans(collector.to_payload()))
        assert list(aggregates) == ["a", "b"]
        assert aggregates["b"]["count"] == 2
        assert aggregates["b"]["total_s"] >= aggregates["b"]["max_s"]

    def test_snapshot_is_deterministic_and_json_ready(self):
        telemetry.enable()
        with telemetry.span("z"):
            pass
        with telemetry.span("a"):
            pass
        snap = telemetry.snapshot()
        assert snap["enabled"] is True
        assert list(snap["spans"]) == ["a", "z"]
        assert json.loads(json.dumps(snap, sort_keys=True)) == json.loads(
            json.dumps(snap, sort_keys=True)
        )

    def test_global_span_buffer_is_bounded(self):
        from repro.telemetry import trace

        telemetry.enable()
        for index in range(70000):
            trace._global_spans.append(index)  # cheap stand-in records
        assert len(telemetry.global_spans()) == 65536


class TestHistogram:
    def test_observe_and_stats(self):
        histogram = Histogram()
        for value in (1e-6, 1e-3, 1.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.min_s == 1e-6
        assert histogram.max_s == 1.0
        assert histogram.mean_s == pytest.approx((1e-6 + 1e-3 + 1.0) / 3)
        assert Histogram().mean_s is None
        assert Histogram().quantile_s(0.5) is None

    def test_bucket_edges(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(1e-6) == 0
        assert bucket_index(1e30) == BUCKET_COUNT - 1
        assert bucket_upper_s(0) == 1e-6
        assert bucket_upper_s(1) == 2e-6
        # Quantiles answer in bucket upper bounds.
        histogram = Histogram()
        histogram.observe(1.5e-6)
        assert histogram.quantile_s(0.5) == bucket_upper_s(bucket_index(1.5e-6))

    def test_merge_matches_bulk_observation(self):
        rng = random.Random(20260808)
        samples = exact_samples(rng, 200)
        bulk = Histogram()
        for value in samples:
            bulk.observe(value)
        left, right = Histogram(), Histogram()
        for index, value in enumerate(samples):
            (left if index % 2 else right).observe(value)
        assert left.merge(right) == bulk

    def test_merge_is_associative_and_permutation_invariant(self):
        rng = random.Random(7)
        parts = []
        for _ in range(6):
            histogram = Histogram()
            for value in exact_samples(rng, 30):
                histogram.observe(value)
            parts.append(histogram)

        def fold(histograms):
            total = Histogram()
            for histogram in histograms:
                total.merge(histogram.to_dict())  # dict form merges too
            return total

        reference = fold(parts)
        for _ in range(5):
            shuffled = list(parts)
            rng.shuffle(shuffled)
            assert fold(shuffled) == reference
        # Associativity: (a + b) + c == a + (b + c).
        a, b, c = parts[:3]
        left = Histogram().merge(a).merge(b)
        left.merge(c)
        right = Histogram().merge(b).merge(c)
        grouped = Histogram().merge(a)
        grouped.merge(right)
        assert grouped == left

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ConfigurationError):
            Histogram.from_dict({"count": "not-a-number"})


class TestMetricsRegistry:
    def random_registry(self, rng):
        registry = MetricsRegistry()
        for name in ("a", "b", "c"):
            registry.inc(name, rng.randrange(0, 100))
        registry.set_gauge("depth", rng.randrange(0, 50) * 1.0)
        for value in exact_samples(rng, 20):
            registry.observe("latency", value)
        return registry

    def test_merge_is_permutation_invariant(self):
        rng = random.Random(20150309)
        parts = [self.random_registry(rng) for _ in range(8)]

        def fold(registries):
            total = MetricsRegistry()
            for registry in registries:
                total.merge(registry.to_dict())
            return total.to_dict()

        reference = fold(parts)
        for _ in range(5):
            shuffled = list(parts)
            rng.shuffle(shuffled)
            assert fold(shuffled) == reference
        # Counters add, gauges keep the maximum.
        assert reference["counters"]["a"] == sum(
            part.counter_value("a") for part in parts
        )
        assert reference["gauges"]["depth"] == max(
            part.gauge_value("depth") for part in parts
        )

    def test_round_trip_and_pickle(self):
        rng = random.Random(3)
        registry = self.random_registry(rng)
        clone = MetricsRegistry.from_dict(
            json.loads(json.dumps(registry.to_dict()))
        )
        assert clone.to_dict() == registry.to_dict()
        pickled = pickle.loads(pickle.dumps(registry))
        assert pickled.to_dict() == registry.to_dict()
        pickled.inc("a")  # the recreated lock works
        assert pickled.counter_value("a") == registry.counter_value("a") + 1

    def test_to_dict_sections_sorted(self):
        registry = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            registry.inc(name)
            registry.observe(name, 0.5)
        document = registry.to_dict()
        assert list(document["counters"]) == ["alpha", "mid", "zeta"]
        assert list(document["histograms"]) == ["alpha", "mid", "zeta"]

    def test_merge_registry_objects_directly(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.inc("n", 2)
        right.inc("n", 5)
        assert left.merge(right) is left
        assert left.counter_value("n") == 7


class TestEngineStatsView:
    """The historical EngineStats surface, now a view over a registry."""

    def test_attribute_surface(self):
        stats = EngineStats(points_requested=3)
        assert stats.points_requested == 3
        assert stats.cache_hits == 0
        stats.cache_hits = 5
        assert stats.cache_hits == 5
        with pytest.raises(AttributeError):
            stats.bogus_counter
        with pytest.raises(AttributeError):
            stats.bogus_counter = 1

    def test_constructor_and_merge_reject_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown engine stats"):
            EngineStats(bogus=1)
        with pytest.raises(ConfigurationError, match="unknown engine stats"):
            EngineStats().merge({"bogus": 1})

    def test_to_dict_covers_every_counter(self):
        stats = EngineStats()
        assert set(stats.to_dict()) == set(EngineStats.COUNTER_NAMES)
        assert all(value == 0 for value in stats.to_dict().values())

    def test_merge_and_equality(self):
        total = EngineStats(thermal_solves=1)
        total.merge({"thermal_solves": 2, "cache_hits": 4})
        assert total == EngineStats(thermal_solves=3, cache_hits=4)
        assert total != EngineStats()

    def test_pickle_round_trip(self):
        stats = EngineStats(snr_evaluations=9)
        clone = pickle.loads(pickle.dumps(stats))
        assert clone == stats
        clone.snr_evaluations += 1
        assert clone.snr_evaluations == 10

    def test_registry_backing(self):
        stats = EngineStats(batches=2)
        assert stats.registry.counter_value("batches") == 2
