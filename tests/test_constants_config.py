"""Tests for paper constants and the technology / simulation configuration."""

import pytest

from repro import constants
from repro.config import SimulationSettings, TechnologyParameters
from repro.errors import ConfigurationError


class TestConstants:
    def test_table1_values_match_paper(self):
        assert constants.DEFAULT_WAVELENGTH_NM == 1550.0
        assert constants.DEFAULT_MR_BANDWIDTH_3DB_NM == 1.55
        assert constants.DEFAULT_PHOTODETECTOR_SENSITIVITY_DBM == -20.0
        assert constants.DEFAULT_THERMAL_SENSITIVITY_NM_PER_C == 0.1
        assert constants.DEFAULT_PROPAGATION_LOSS_DB_PER_CM == 0.5

    def test_vcsel_anchors(self):
        assert constants.DEFAULT_VCSEL_LINEWIDTH_NM == 0.1
        assert constants.DEFAULT_VCSEL_MODULATION_BANDWIDTH_GHZ == 12.0
        assert constants.DEFAULT_TAPER_COUPLING_EFFICIENCY == 0.70

    def test_scc_geometry(self):
        assert constants.SCC_TILE_GRID == (6, 4)
        assert constants.SCC_DIE_WIDTH_MM * constants.SCC_DIE_HEIGHT_MM == pytest.approx(
            567.1, rel=0.01
        )

    def test_scenario_ring_lengths(self):
        assert constants.SCENARIO_RING_LENGTHS_MM == (18.0, 32.4, 46.8)

    def test_photon_energy_1550nm(self):
        energy = constants.photon_energy_j(1550.0)
        assert energy == pytest.approx(1.28e-19, rel=0.01)

    def test_photon_energy_rejects_non_positive(self):
        with pytest.raises(ValueError):
            constants.photon_energy_j(0.0)

    def test_quantum_slope_efficiency(self):
        # hc / (q * lambda) = ~0.8 W/A at 1550 nm.
        assert constants.quantum_slope_efficiency_w_per_a(1550.0) == pytest.approx(
            0.8, rel=0.01
        )


class TestTechnologyParameters:
    def test_defaults_are_table1(self):
        tech = TechnologyParameters()
        assert tech.wavelength_nm == 1550.0
        assert tech.mr_bandwidth_3db_nm == 1.55
        assert tech.photodetector_sensitivity_dbm == -20.0
        assert tech.thermal_sensitivity_nm_per_c == 0.1
        assert tech.propagation_loss_db_per_cm == 0.5

    def test_sensitivity_in_milliwatts(self):
        tech = TechnologyParameters()
        assert tech.photodetector_sensitivity_mw == pytest.approx(0.01)

    def test_detuning_temperature_mapping_roundtrip(self):
        tech = TechnologyParameters()
        assert tech.detuning_for_temperature_difference(7.7) == pytest.approx(0.77)
        assert tech.temperature_difference_for_detuning(0.77) == pytest.approx(7.7)

    def test_zero_sensitivity_rejects_inverse_mapping(self):
        tech = TechnologyParameters(thermal_sensitivity_nm_per_c=0.0)
        with pytest.raises(ConfigurationError):
            tech.temperature_difference_for_detuning(0.5)

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            TechnologyParameters(wavelength_nm=-1.0)
        with pytest.raises(ConfigurationError):
            TechnologyParameters(taper_coupling_efficiency=1.5)
        with pytest.raises(ConfigurationError):
            TechnologyParameters(channel_spacing_nm=0.0)
        with pytest.raises(ConfigurationError):
            TechnologyParameters(mr_drop_loss_db=-0.1)

    def test_to_dict_contains_all_fields(self):
        data = TechnologyParameters().to_dict()
        assert data["wavelength_nm"] == 1550.0
        assert "taper_coupling_efficiency" in data


class TestSimulationSettings:
    def test_defaults_are_positive(self):
        settings = SimulationSettings()
        assert settings.oni_cell_size_um > 0
        assert settings.zoom_cell_size_um > 0
        assert settings.max_cells > 0
        assert settings.heat_sink_coefficient_w_m2k > 0

    def test_invalid_settings_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationSettings(oni_cell_size_um=0.0)
        with pytest.raises(ConfigurationError):
            SimulationSettings(max_cells=0)
        with pytest.raises(ConfigurationError):
            SimulationSettings(solver_rtol=-1.0)
        with pytest.raises(ConfigurationError):
            SimulationSettings(heat_sink_coefficient_w_m2k=0.0)

    def test_to_dict_roundtrip(self):
        settings = SimulationSettings(ambient_temperature_c=40.0)
        data = settings.to_dict()
        assert data["ambient_temperature_c"] == 40.0
