"""Tests for the reduced-order transient engine (bases, payloads, fallback)."""

import json

import numpy as np
import pytest

from repro.errors import SolverError
from repro.geometry import Box, Layer, LayerStack, Rect
from repro.materials import SILICON
from repro.thermal import (
    BoundaryConditions,
    FaceCondition,
    HeatSource,
    MeshBuilder,
    ReducedBasis,
    RomConfig,
    ScheduleSegment,
    SourceSchedule,
    TransientSolver,
    basis_content_key,
    build_basis,
    clear_installed_bases,
    install_payload,
    installed_basis,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    """The installed-basis registry is process-global; never leak across tests."""
    clear_installed_bases()
    yield
    clear_installed_bases()


def slab_problem(side_mm=5.0, thickness_um=400.0, cells_um=1000.0):
    footprint = Rect.from_size_mm(0.0, 0.0, side_mm, side_mm)
    stack = LayerStack(footprint)
    stack.add_layer(Layer(name="bulk", thickness=thickness_um * 1e-6, material=SILICON))
    mesh = MeshBuilder(stack, base_cell_size_um=cells_um, vertical_target_um=100.0).build()
    boundaries = BoundaryConditions()
    boundaries.set_face("z_max", FaceCondition.convective(25.0, 1500.0))
    source = HeatSource.from_rect("sheet", footprint, 0.0, 10e-6, 5.0)
    corner = HeatSource.from_rect(
        "corner", Rect.from_size_mm(0.0, 0.0, 1.0, 1.0), 0.0, 10e-6, 3.0
    )
    return mesh, boundaries, source, corner


def smooth_schedule(source, corner):
    """Three segments of distinct load and duration: a well-behaved trace."""
    return SourceSchedule(
        [
            ScheduleSegment(1.0, (source,)),
            ScheduleSegment(0.8, (corner,)),
            ScheduleSegment(0.6, (source, corner)),
        ]
    )


def fast_schedule(source, corner):
    """Millisecond alternation between two loads: adversarial for a tiny
    basis, whose trajectory POD cannot track the sharp switching."""
    return SourceSchedule(
        [
            ScheduleSegment(0.002, (source,) if index % 2 == 0 else (corner,))
            for index in range(6)
        ]
    )


def orthonormal(n_rows, n_cols, seed=0):
    rng = np.random.default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((n_rows, n_cols)))
    return q[:, :n_cols]


class TestRomConfig:
    def test_defaults_are_valid(self):
        config = RomConfig()
        assert config.max_dim >= 1
        assert 0.0 < config.svd_tol < 1.0
        assert config.residual_tol > 0.0

    def test_invalid_knobs_rejected(self):
        with pytest.raises(SolverError, match="max_dim"):
            RomConfig(max_dim=0)
        for svd_tol in (0.0, 1.0, -1.0e-9):
            with pytest.raises(SolverError, match="svd_tol"):
                RomConfig(svd_tol=svd_tol)
        with pytest.raises(SolverError, match="residual_tol"):
            RomConfig(residual_tol=0.0)


class TestReducedBasis:
    def test_rejects_degenerate_matrices(self):
        with pytest.raises(SolverError, match="non-empty"):
            ReducedBasis(np.zeros((0, 3)), "k")
        with pytest.raises(SolverError, match="non-empty"):
            ReducedBasis(np.zeros(5), "k")
        bad = np.ones((4, 2))
        bad[1, 1] = np.nan
        with pytest.raises(SolverError, match="finite"):
            ReducedBasis(bad, "k")

    def test_payload_round_trip(self):
        basis = ReducedBasis(orthonormal(12, 4), "abc123")
        payload = json.loads(basis.to_payload_json())
        rebuilt = ReducedBasis.from_payload(payload)
        assert rebuilt.key == "abc123"
        assert rebuilt.n_cells == 12 and rebuilt.dim == 4
        np.testing.assert_array_equal(rebuilt.matrix, basis.matrix)

    def test_malformed_payloads_rejected(self):
        good = ReducedBasis(orthonormal(6, 2), "k").to_payload()
        with pytest.raises(SolverError, match="format"):
            ReducedBasis.from_payload({**good, "format": "something-else"})
        with pytest.raises(SolverError, match="version"):
            ReducedBasis.from_payload({**good, "version": 999})
        with pytest.raises(SolverError, match="malformed"):
            ReducedBasis.from_payload({**good, "data": "!!! not base64 !!!"})
        with pytest.raises(SolverError, match="bytes"):
            ReducedBasis.from_payload({**good, "dim": 3})
        missing = dict(good)
        del missing["data"]
        with pytest.raises(SolverError, match="malformed"):
            ReducedBasis.from_payload(missing)


class TestBasisContentKey:
    def test_key_pins_every_input(self):
        capacitance = np.linspace(1.0, 2.0, 8)
        initial = np.full(8, 25.0)
        load = np.ones(8)
        segments = [(4, 0.25, load)]
        reference = basis_content_key("op", capacitance, 1.0, initial, segments)
        assert reference == basis_content_key(
            "op", capacitance.copy(), 1.0, initial.copy(), [(4, 0.25, load.copy())]
        )
        assert reference != basis_content_key("other", capacitance, 1.0, initial, segments)
        assert reference != basis_content_key("op", capacitance, 0.5, initial, segments)
        assert reference != basis_content_key(
            "op", capacitance, 1.0, initial + 1.0, segments
        )
        assert reference != basis_content_key(
            "op", capacitance, 1.0, initial, [(5, 0.25, load)]
        )
        assert reference != basis_content_key(
            "op", capacitance, 1.0, initial, [(4, 0.2, load)]
        )
        assert reference != basis_content_key(
            "op", capacitance, 1.0, initial, [(4, 0.25, 2.0 * load)]
        )


class TestBuildBasis:
    def test_all_zero_snapshots_rejected(self):
        with pytest.raises(SolverError, match="all-zero"):
            build_basis("k", np.zeros((6, 3)))

    def test_dim_cap_and_orthonormality(self):
        rng = np.random.default_rng(7)
        trajectory = rng.standard_normal((20, 10))
        basis = build_basis("k", trajectory, config=RomConfig(max_dim=3))
        assert basis.dim == 3
        np.testing.assert_allclose(
            basis.matrix.T @ basis.matrix, np.eye(3), atol=1e-12
        )

    def test_steady_states_are_spanned(self):
        rng = np.random.default_rng(11)
        trajectory = rng.standard_normal((16, 4))
        steady = rng.standard_normal((16, 2))
        basis = build_basis("k", trajectory, steady_states=steady)
        projected = basis.matrix @ (basis.matrix.T @ steady)
        np.testing.assert_allclose(projected, steady, atol=1e-9)


class TestInstalledRegistry:
    def test_install_payload_idempotent(self):
        basis = ReducedBasis(orthonormal(10, 3), "key-1")
        document = basis.to_payload_json()
        assert install_payload(document) == "key-1"
        assert install_payload(document) == "key-1"
        served = installed_basis("key-1")
        assert served is not None
        np.testing.assert_array_equal(served.matrix, basis.matrix)
        assert installed_basis("unknown") is None

    def test_install_payload_accepts_mapping(self):
        basis = ReducedBasis(orthonormal(10, 3), "key-2")
        assert install_payload(basis.to_payload()) == "key-2"
        assert installed_basis("key-2") is not None

    def test_clear_installed_bases(self):
        install_payload(ReducedBasis(orthonormal(4, 2), "key-3").to_payload())
        clear_installed_bases()
        assert installed_basis("key-3") is None


class TestRomSolve:
    def test_build_solve_is_lu_exact_and_harvestable(self):
        mesh, boundaries, source, corner = slab_problem()
        schedule = smooth_schedule(source, corner)
        probes = {"whole": mesh.bounding_box()}
        reference = TransientSolver(mesh, boundaries).solve(
            schedule, dt_s=0.2, probes=probes, snapshot_times_s=[0.5]
        )
        solver = TransientSolver(mesh, boundaries)
        built = solver.solve(
            schedule, dt_s=0.2, probes=probes, snapshot_times_s=[0.5], method="rom"
        )
        # The build solve runs the exact LU path and harvests its trajectory:
        # byte-identical numbers, provenance flags the basis build.
        assert built.diagnostics.solver_method == "lu"
        assert built.diagnostics.rom_basis_built
        assert built.diagnostics.rom_dim > 0
        assert not built.diagnostics.rom_fallback
        np.testing.assert_array_equal(
            built.probe("whole").temperatures_c,
            reference.probe("whole").temperatures_c,
        )
        np.testing.assert_array_equal(
            built.final_map.temperatures_c, reference.final_map.temperatures_c
        )
        payloads = solver.rom_payloads()
        assert len(payloads) == 1
        harvested = ReducedBasis.from_payload(json.loads(payloads[0]))
        assert harvested.dim == built.diagnostics.rom_dim
        assert harvested.n_cells == mesh.n_cells

    def test_replay_stays_inside_golden_bands(self):
        mesh, boundaries, source, corner = slab_problem()
        schedule = smooth_schedule(source, corner)
        probes = {"whole": mesh.bounding_box()}
        solver = TransientSolver(mesh, boundaries)
        reference = TransientSolver(mesh, boundaries).solve(
            schedule, dt_s=0.2, probes=probes, snapshot_times_s=[0.5]
        )
        solver.solve(schedule, dt_s=0.2, probes=probes, method="rom")
        replay = solver.solve(
            schedule, dt_s=0.2, probes=probes, snapshot_times_s=[0.5], method="rom"
        )
        assert replay.diagnostics.solver_method == "rom"
        assert not replay.diagnostics.rom_basis_built
        assert 0.0 < replay.diagnostics.rom_residual < solver.rom_config.residual_tol
        # The golden temperature band is rtol 1e-5 / atol 1e-6; an adequate
        # own-trajectory basis reproduces probes orders of magnitude tighter.
        np.testing.assert_allclose(
            replay.probe("whole").temperatures_c,
            reference.probe("whole").temperatures_c,
            rtol=1e-5,
            atol=1e-6,
        )
        np.testing.assert_allclose(
            replay.final_map.temperatures_c,
            reference.final_map.temperatures_c,
            rtol=1e-5,
            atol=1e-6,
        )
        assert len(replay.snapshots) == len(reference.snapshots) == 1
        np.testing.assert_allclose(
            replay.snapshots[0].thermal_map.temperatures_c,
            reference.snapshots[0].thermal_map.temperatures_c,
            rtol=1e-5,
            atol=1e-6,
        )

    def test_basis_serves_different_instrumentation(self):
        # Probes and snapshot times are excluded from the basis key: one
        # basis replays any instrumentation of the same physical problem.
        mesh, boundaries, source, corner = slab_problem()
        schedule = smooth_schedule(source, corner)
        solver = TransientSolver(mesh, boundaries)
        solver.solve(schedule, dt_s=0.2, method="rom")
        replay = solver.solve(
            schedule,
            dt_s=0.2,
            probes={"corner": Box.from_rect(Rect.from_size_mm(0.0, 0.0, 1.0, 1.0), 0.0, 10e-6)},
            snapshot_times_s=[1.2],
            method="rom",
        )
        assert replay.diagnostics.solver_method == "rom"

    def test_auto_never_builds_and_uses_installed_bases(self):
        mesh, boundaries, source, corner = slab_problem()
        schedule = smooth_schedule(source, corner)
        auto = TransientSolver(mesh, boundaries).solve(
            schedule, dt_s=0.2, method="auto"
        )
        assert auto.diagnostics.solver_method == "lu"
        assert not auto.diagnostics.rom_basis_built

        builder = TransientSolver(mesh, boundaries)
        builder.solve(schedule, dt_s=0.2, method="rom")
        for payload in builder.rom_payloads():
            install_payload(payload)
        warmed = TransientSolver(mesh, boundaries).solve(
            schedule, dt_s=0.2, method="auto"
        )
        assert warmed.diagnostics.solver_method == "rom"

    def test_residual_breach_falls_back_to_lu(self):
        mesh, boundaries, source, corner = slab_problem()
        schedule = fast_schedule(source, corner)
        reference = TransientSolver(mesh, boundaries).solve(schedule, dt_s=0.001)
        solver = TransientSolver(
            mesh, boundaries, rom_config=RomConfig(max_dim=2)
        )
        solver.solve(schedule, dt_s=0.001, method="rom")
        fallback = solver.solve(schedule, dt_s=0.001, method="rom")
        assert fallback.diagnostics.solver_method == "lu"
        assert fallback.diagnostics.rom_fallback
        assert not fallback.diagnostics.rom_basis_built
        np.testing.assert_array_equal(
            fallback.final_map.temperatures_c, reference.final_map.temperatures_c
        )

    def test_unknown_method_rejected(self):
        mesh, boundaries, source, corner = slab_problem()
        solver = TransientSolver(mesh, boundaries)
        with pytest.raises(SolverError, match="unknown transient method"):
            solver.solve(smooth_schedule(source, corner), dt_s=0.2, method="qr")
