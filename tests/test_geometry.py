"""Tests for geometric primitives: rectangles, boxes, stacks, floorplans, placement."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    Box,
    Floorplan,
    FloorplanInstance,
    Layer,
    LayerStack,
    MaterialBlock,
    Rect,
    grid_floorplan,
    grid_positions,
    nearest_position_index,
    point_on_rectangle_perimeter,
    rectangle_for_perimeter,
    rectangle_perimeter_length,
    ring_distance,
    ring_positions,
)
from repro.materials import COPPER, EPOXY, SILICON

finite_coords = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)
positive_sizes = st.floats(min_value=1e-6, max_value=1.0, allow_nan=False)


class TestRect:
    def test_from_size_and_properties(self):
        rect = Rect.from_size(1.0, 2.0, 3.0, 4.0)
        assert rect.width == pytest.approx(3.0)
        assert rect.height == pytest.approx(4.0)
        assert rect.area == pytest.approx(12.0)
        assert rect.center == (pytest.approx(2.5), pytest.approx(4.0))

    def test_from_center(self):
        rect = Rect.from_center(0.0, 0.0, 2.0, 4.0)
        assert rect.x_min == -1.0 and rect.x_max == 1.0
        assert rect.y_min == -2.0 and rect.y_max == 2.0

    def test_unit_constructors(self):
        rect_mm = Rect.from_size_mm(0.0, 0.0, 26.5, 21.4)
        assert rect_mm.width == pytest.approx(0.0265)
        rect_um = Rect.from_size_um(0.0, 0.0, 15.0, 30.0)
        assert rect_um.height == pytest.approx(30.0e-6)

    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            Rect(1.0, 0.0, 0.0, 1.0)
        with pytest.raises(GeometryError):
            Rect.from_size(0.0, 0.0, -1.0, 1.0)

    def test_containment_and_intersection(self):
        outer = Rect.from_size(0.0, 0.0, 10.0, 10.0)
        inner = Rect.from_size(2.0, 2.0, 3.0, 3.0)
        disjoint = Rect.from_size(20.0, 20.0, 1.0, 1.0)
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)
        assert outer.intersects(inner)
        assert not outer.intersects(disjoint)
        assert outer.intersection(disjoint) is None
        assert outer.overlap_area(inner) == pytest.approx(inner.area)

    def test_touching_rects_do_not_intersect(self):
        left = Rect.from_size(0.0, 0.0, 1.0, 1.0)
        right = Rect.from_size(1.0, 0.0, 1.0, 1.0)
        assert not left.intersects(right)
        assert left.overlap_area(right) == 0.0

    def test_expand_and_translate(self):
        rect = Rect.from_size(0.0, 0.0, 2.0, 2.0)
        grown = rect.expanded(1.0)
        assert grown.width == pytest.approx(4.0)
        moved = rect.translated(5.0, -1.0)
        assert moved.x_min == pytest.approx(5.0)
        assert moved.y_min == pytest.approx(-1.0)

    def test_grid_cells_cover_area(self):
        rect = Rect.from_size(0.0, 0.0, 6.0, 4.0)
        cells = list(rect.grid_cells(3, 2))
        assert len(cells) == 6
        assert sum(cell.area for cell in cells) == pytest.approx(rect.area)

    @given(finite_coords, finite_coords, positive_sizes, positive_sizes)
    def test_overlap_is_symmetric_and_bounded(self, x, y, w, h):
        first = Rect.from_size(x, y, w, h)
        second = Rect.from_size(0.0, 0.0, 0.5, 0.5)
        overlap = first.overlap_area(second)
        assert overlap == pytest.approx(second.overlap_area(first))
        assert overlap <= min(first.area, second.area) + 1e-12


class TestBox:
    def test_from_rect_and_volume(self):
        rect = Rect.from_size(0.0, 0.0, 2.0, 3.0)
        box = Box.from_rect(rect, 1.0, 2.0)
        assert box.volume == pytest.approx(6.0)
        assert box.thickness == pytest.approx(1.0)
        assert box.footprint.area == pytest.approx(rect.area)

    def test_overlap_fraction(self):
        box = Box(0.0, 0.0, 0.0, 2.0, 2.0, 2.0)
        half = Box(0.0, 0.0, 0.0, 1.0, 2.0, 2.0)
        assert half.overlap_fraction(box) == pytest.approx(1.0)
        assert box.overlap_fraction(half) == pytest.approx(0.5)

    def test_disjoint_boxes(self):
        first = Box(0.0, 0.0, 0.0, 1.0, 1.0, 1.0)
        second = Box(5.0, 5.0, 5.0, 6.0, 6.0, 6.0)
        assert first.intersection(second) is None
        assert first.overlap_volume(second) == 0.0

    def test_contains_point(self):
        box = Box(0.0, 0.0, 0.0, 1.0, 1.0, 1.0)
        assert box.contains_point(0.5, 0.5, 0.5)
        assert not box.contains_point(1.5, 0.5, 0.5)


class TestLayerStack:
    def _stack(self):
        footprint = Rect.from_size_mm(0.0, 0.0, 10.0, 10.0)
        stack = LayerStack(footprint)
        stack.add_layer(Layer(name="bottom", thickness=100e-6, material=SILICON))
        stack.add_layer(Layer(name="top", thickness=50e-6, material=COPPER))
        return stack

    def test_total_thickness_and_bounds(self):
        stack = self._stack()
        assert stack.total_thickness == pytest.approx(150e-6)
        assert stack.z_bounds("bottom") == (pytest.approx(0.0), pytest.approx(100e-6))
        assert stack.z_bounds("top") == (pytest.approx(100e-6), pytest.approx(150e-6))

    def test_layer_at_height(self):
        stack = self._stack()
        assert stack.layer_at(50e-6).name == "bottom"
        assert stack.layer_at(120e-6).name == "top"
        with pytest.raises(GeometryError):
            stack.layer_at(1.0)

    def test_duplicate_layer_rejected(self):
        stack = self._stack()
        with pytest.raises(GeometryError):
            stack.add_layer(Layer(name="top", thickness=10e-6, material=SILICON))

    def test_unknown_layer_rejected(self):
        with pytest.raises(GeometryError, match="unknown layer"):
            self._stack().layer("missing")

    def test_material_at_with_blocks(self):
        stack = self._stack()
        block_rect = Rect.from_size_mm(1.0, 1.0, 2.0, 2.0)
        stack.layer("bottom").add_block(
            MaterialBlock(name="island", footprint=block_rect, material=EPOXY)
        )
        inside = stack.material_at(2e-3, 2e-3, 50e-6)
        outside = stack.material_at(8e-3, 8e-3, 50e-6)
        assert inside.name == "epoxy"
        assert outside.name == "silicon"

    def test_narrow_layer_uses_padding(self):
        footprint = Rect.from_size_mm(0.0, 0.0, 10.0, 10.0)
        stack = LayerStack(footprint)
        die = Rect.from_size_mm(2.0, 2.0, 6.0, 6.0)
        stack.add_layer(
            Layer(
                name="die",
                thickness=100e-6,
                material=SILICON,
                footprint=die,
                padding_material=EPOXY,
            )
        )
        assert stack.material_at(5e-3, 5e-3, 50e-6).name == "silicon"
        assert stack.material_at(0.5e-3, 0.5e-3, 50e-6).name == "epoxy"

    def test_layer_box(self):
        stack = self._stack()
        box = stack.layer_box("top")
        assert box.thickness == pytest.approx(50e-6)


class TestFloorplan:
    def test_grid_floorplan_covers_outline(self):
        outline = Rect.from_size_mm(0.0, 0.0, 26.5, 21.4)
        floorplan = grid_floorplan(outline, 6, 4)
        assert len(floorplan) == 24
        assert floorplan.utilization() == pytest.approx(1.0)
        assert "tile_0_0" in floorplan
        assert "tile_5_3" in floorplan

    def test_duplicate_instance_rejected(self):
        outline = Rect.from_size_mm(0.0, 0.0, 10.0, 10.0)
        floorplan = Floorplan(outline)
        rect = Rect.from_size_mm(0.0, 0.0, 1.0, 1.0)
        floorplan.add_rect("a", rect)
        with pytest.raises(GeometryError):
            floorplan.add_rect("a", rect)

    def test_instance_outside_outline_rejected(self):
        outline = Rect.from_size_mm(0.0, 0.0, 10.0, 10.0)
        floorplan = Floorplan(outline)
        with pytest.raises(GeometryError):
            floorplan.add_rect("big", Rect.from_size_mm(5.0, 5.0, 10.0, 10.0))

    def test_instances_of_kind_and_intersecting(self):
        outline = Rect.from_size_mm(0.0, 0.0, 10.0, 10.0)
        floorplan = Floorplan(outline)
        floorplan.add_rect("core0", Rect.from_size_mm(0.0, 0.0, 4.0, 4.0), kind="core")
        floorplan.add_rect("cache0", Rect.from_size_mm(5.0, 5.0, 4.0, 4.0), kind="cache")
        assert [i.name for i in floorplan.instances_of_kind("core")] == ["core0"]
        hits = floorplan.instances_intersecting(Rect.from_size_mm(3.0, 3.0, 1.0, 1.0))
        assert [i.name for i in hits] == ["core0"]

    def test_unknown_instance(self):
        outline = Rect.from_size_mm(0.0, 0.0, 10.0, 10.0)
        floorplan = Floorplan(outline)
        with pytest.raises(GeometryError):
            floorplan.get("missing")


class TestPlacement:
    def test_rectangle_for_perimeter(self):
        rect = rectangle_for_perimeter(0.0, 0.0, 18.0e-3, aspect_ratio=2.0)
        assert rectangle_perimeter_length(rect) == pytest.approx(18.0e-3)
        assert rect.width / rect.height == pytest.approx(2.0)

    def test_point_on_perimeter_corners(self):
        rect = Rect.from_size(0.0, 0.0, 2.0, 1.0)
        assert point_on_rectangle_perimeter(rect, 0.0) == (pytest.approx(0.0), pytest.approx(0.0))
        assert point_on_rectangle_perimeter(rect, 2.0) == (pytest.approx(2.0), pytest.approx(0.0))
        assert point_on_rectangle_perimeter(rect, 3.0) == (pytest.approx(2.0), pytest.approx(1.0))
        # Full perimeter wraps back to the start.
        x, y = point_on_rectangle_perimeter(rect, 6.0)
        assert (x, y) == (pytest.approx(0.0), pytest.approx(0.0))

    def test_ring_positions_even_spacing(self):
        rect = Rect.from_size(0.0, 0.0, 4.0, 2.0)
        positions = ring_positions(rect, 12)
        assert len(positions) == 12
        spacings = [
            positions[i + 1].arc_length - positions[i].arc_length for i in range(11)
        ]
        assert all(s == pytest.approx(1.0) for s in spacings)
        # Every position lies on the rectangle border.
        for position in positions:
            on_vertical = math.isclose(position.x, 0.0) or math.isclose(position.x, 4.0)
            on_horizontal = math.isclose(position.y, 0.0) or math.isclose(position.y, 2.0)
            assert on_vertical or on_horizontal

    def test_ring_distance_directions(self):
        assert ring_distance(10.0, 1.0, 4.0, "forward") == pytest.approx(3.0)
        assert ring_distance(10.0, 1.0, 4.0, "backward") == pytest.approx(7.0)
        assert ring_distance(10.0, 4.0, 1.0, "forward") == pytest.approx(7.0)

    def test_ring_distance_invalid_direction(self):
        with pytest.raises(GeometryError):
            ring_distance(10.0, 0.0, 1.0, "sideways")

    def test_grid_positions_and_nearest(self):
        rect = Rect.from_size(0.0, 0.0, 4.0, 4.0)
        positions = grid_positions(rect, 2, 2)
        assert len(positions) == 4
        index = nearest_position_index(positions, 0.9, 0.9)
        assert positions[index] == (pytest.approx(1.0), pytest.approx(1.0))

    def test_nearest_with_empty_positions(self):
        with pytest.raises(GeometryError):
            nearest_position_index([], 0.0, 0.0)
