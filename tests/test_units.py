"""Tests for unit conversions."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestLengthConversions:
    def test_um_to_m_roundtrip(self):
        assert units.m_to_um(units.um_to_m(123.0)) == pytest.approx(123.0)

    def test_mm_to_m(self):
        assert units.mm_to_m(26.5) == pytest.approx(0.0265)

    def test_nm_to_m(self):
        assert units.nm_to_m(1550.0) == pytest.approx(1.55e-6)

    def test_mm_to_cm(self):
        assert units.mm_to_cm(46.8) == pytest.approx(4.68)

    def test_cm_to_mm_roundtrip(self):
        assert units.cm_to_mm(units.mm_to_cm(18.0)) == pytest.approx(18.0)

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_length_roundtrips_are_identity(self, value):
        assert units.um_to_m(units.m_to_um(value)) == pytest.approx(value, rel=1e-12, abs=1e-12)
        assert units.mm_to_m(units.m_to_mm(value)) == pytest.approx(value, rel=1e-12, abs=1e-12)
        assert units.nm_to_m(units.m_to_nm(value)) == pytest.approx(value, rel=1e-12, abs=1e-12)


class TestPowerConversions:
    def test_mw_to_w(self):
        assert units.mw_to_w(3.6) == pytest.approx(3.6e-3)

    def test_uw_to_w(self):
        assert units.uw_to_w(190.0) == pytest.approx(1.9e-4)

    def test_mw_to_dbm_known_values(self):
        assert units.mw_to_dbm(1.0) == pytest.approx(0.0)
        assert units.mw_to_dbm(0.01) == pytest.approx(-20.0)
        assert units.mw_to_dbm(100.0) == pytest.approx(20.0)

    def test_dbm_to_mw_known_values(self):
        assert units.dbm_to_mw(-20.0) == pytest.approx(0.01)
        assert units.dbm_to_mw(0.0) == pytest.approx(1.0)

    def test_mw_to_dbm_rejects_non_positive(self):
        with pytest.raises(ValueError):
            units.mw_to_dbm(0.0)
        with pytest.raises(ValueError):
            units.mw_to_dbm(-1.0)

    def test_safe_mw_to_dbm_floors_non_positive(self):
        assert units.safe_mw_to_dbm(0.0) == -200.0
        assert units.safe_mw_to_dbm(-5.0, floor_dbm=-99.0) == -99.0

    def test_safe_mw_to_dbm_matches_exact_for_positive(self):
        assert units.safe_mw_to_dbm(0.5) == pytest.approx(units.mw_to_dbm(0.5))

    @given(st.floats(min_value=1e-12, max_value=1e6))
    def test_dbm_roundtrip(self, power_mw):
        assert units.dbm_to_mw(units.mw_to_dbm(power_mw)) == pytest.approx(
            power_mw, rel=1e-9
        )


class TestRatioConversions:
    def test_db_to_ratio_known_values(self):
        assert units.db_to_ratio(0.0) == pytest.approx(1.0)
        assert units.db_to_ratio(10.0) == pytest.approx(10.0)
        assert units.db_to_ratio(3.0) == pytest.approx(1.995, rel=1e-3)

    def test_ratio_to_db_rejects_non_positive(self):
        with pytest.raises(ValueError):
            units.ratio_to_db(0.0)

    def test_db_loss_to_transmission(self):
        assert units.db_loss_to_transmission(0.0) == pytest.approx(1.0)
        assert units.db_loss_to_transmission(3.0) == pytest.approx(0.501, rel=1e-2)
        assert units.db_loss_to_transmission(10.0) == pytest.approx(0.1)

    def test_db_loss_rejects_negative(self):
        with pytest.raises(ValueError):
            units.db_loss_to_transmission(-1.0)

    def test_transmission_to_db_loss_bounds(self):
        with pytest.raises(ValueError):
            units.transmission_to_db_loss(0.0)
        with pytest.raises(ValueError):
            units.transmission_to_db_loss(1.5)

    @given(st.floats(min_value=1e-6, max_value=1.0))
    def test_transmission_roundtrip(self, transmission):
        loss = units.transmission_to_db_loss(transmission)
        assert loss >= 0.0
        assert units.db_loss_to_transmission(loss) == pytest.approx(
            transmission, rel=1e-9
        )

    @given(st.floats(min_value=0.0, max_value=100.0))
    def test_loss_monotonicity(self, loss_db):
        assert units.db_loss_to_transmission(loss_db) <= 1.0
        assert units.db_loss_to_transmission(loss_db + 1.0) < units.db_loss_to_transmission(loss_db) + 1e-15


class TestTemperatureAndCurrent:
    def test_celsius_kelvin_roundtrip(self):
        assert units.kelvin_to_celsius(units.celsius_to_kelvin(60.0)) == pytest.approx(60.0)

    def test_celsius_to_kelvin_offset(self):
        assert units.celsius_to_kelvin(0.0) == pytest.approx(273.15)

    def test_current_conversions(self):
        assert units.ma_to_a(6.0) == pytest.approx(6.0e-3)
        assert units.a_to_ma(0.012) == pytest.approx(12.0)
