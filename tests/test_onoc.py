"""Tests for the ORNoC ring: topology, traffic, channel assignment, losses,
and the baseline crossbar comparison."""

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.config import TechnologyParameters
from repro.errors import NetworkError
from repro.onoc import (
    Communication,
    InsertionLossAnalyzer,
    LambdaRouterCrossbar,
    MatrixCrossbar,
    OrnocNetwork,
    OrnocRingCrossbar,
    RingNode,
    RingTopology,
    SnakeCrossbar,
    all_to_all_traffic,
    all_to_one_traffic,
    compare_topologies,
    neighbor_traffic,
    one_to_all_traffic,
    opposite_traffic,
    ornoc_reduction_factors,
    random_pair_traffic,
    ring_path_length,
    shift_traffic,
)


@pytest.fixture
def ring():
    return RingTopology.evenly_spaced([f"oni_{i:02d}" for i in range(8)], 32.0e-3)


class TestRingTopology:
    def test_evenly_spaced_positions(self, ring):
        assert len(ring) == 8
        assert ring.arc_length("oni_00") == 0.0
        assert ring.arc_length("oni_04") == pytest.approx(16.0e-3)

    def test_path_length_directions(self, ring):
        forward = ring.path_length_m("oni_00", "oni_02", "clockwise")
        backward = ring.path_length_m("oni_00", "oni_02", "counterclockwise")
        assert forward == pytest.approx(8.0e-3)
        assert backward == pytest.approx(24.0e-3)
        assert forward + backward == pytest.approx(ring.total_length_m)

    def test_nodes_between(self, ring):
        assert ring.nodes_between("oni_00", "oni_03") == ["oni_01", "oni_02"]
        assert ring.nodes_between("oni_06", "oni_01") == ["oni_07", "oni_00"]
        assert ring.nodes_between("oni_00", "oni_01") == []

    def test_traversal_order_visits_all_others(self, ring):
        order = ring.traversal_order("oni_03")
        assert len(order) == 7
        assert order[0] == "oni_04"
        assert order[-1] == "oni_02"
        assert "oni_03" not in order

    def test_opposite(self, ring):
        assert ring.opposite("oni_00") == "oni_04"
        assert ring.opposite("oni_06") == "oni_02"

    def test_hop_count(self, ring):
        assert ring.hop_count("oni_00", "oni_01") == 1
        assert ring.hop_count("oni_00", "oni_04") == 4

    def test_validation_errors(self, ring):
        with pytest.raises(NetworkError):
            ring.path_length_m("oni_00", "oni_00")
        with pytest.raises(NetworkError):
            ring.node("oni_99")
        with pytest.raises(NetworkError):
            ring.path_length_m("oni_00", "oni_01", direction="sideways")
        with pytest.raises(NetworkError):
            RingTopology(0.0, [RingNode("a", 0.0), RingNode("b", 1.0)])
        with pytest.raises(NetworkError):
            RingTopology(1.0, [RingNode("a", 0.0), RingNode("a", 0.5)])
        with pytest.raises(NetworkError):
            RingTopology(1.0, [RingNode("a", 0.0), RingNode("b", 2.0)])

    @given(st.integers(min_value=2, max_value=20), st.integers(min_value=0, max_value=19))
    @hyp_settings(max_examples=30)
    def test_forward_plus_backward_equals_ring_length(self, count, offset):
        names = [f"n{i}" for i in range(count)]
        topology = RingTopology.evenly_spaced(names, 10.0e-3)
        source = names[offset % count]
        destination = names[(offset + 1) % count]
        forward = topology.path_length_m(source, destination, "clockwise")
        backward = topology.path_length_m(source, destination, "counterclockwise")
        assert forward + backward == pytest.approx(topology.total_length_m)


class TestTraffic:
    def test_neighbor_traffic(self, ring):
        traffic = neighbor_traffic(ring)
        assert len(traffic) == 8
        assert traffic[0].source == "oni_00" and traffic[0].destination == "oni_01"

    def test_opposite_traffic(self, ring):
        traffic = opposite_traffic(ring)
        assert all(
            ring.path_length_m(c.source, c.destination) == pytest.approx(16.0e-3)
            for c in traffic
        )

    def test_all_to_one_and_one_to_all(self, ring):
        inbound = all_to_one_traffic(ring, "oni_00")
        outbound = one_to_all_traffic(ring, "oni_00")
        assert len(inbound) == 7 and len(outbound) == 7
        assert all(c.destination == "oni_00" for c in inbound)
        assert all(c.source == "oni_00" for c in outbound)

    def test_all_to_all_count(self, ring):
        assert len(all_to_all_traffic(ring)) == 8 * 7

    def test_random_pairs_reproducible(self, ring):
        first = random_pair_traffic(ring, pairs=6, seed=3)
        second = random_pair_traffic(ring, pairs=6, seed=3)
        assert [(c.source, c.destination) for c in first] == [
            (c.source, c.destination) for c in second
        ]
        assert len({(c.source, c.destination) for c in first}) == 6

    def test_shift_traffic(self, ring):
        traffic = shift_traffic(ring, 3)
        assert traffic[0].destination == "oni_03"

    def test_invalid_traffic_arguments(self, ring):
        with pytest.raises(NetworkError):
            neighbor_traffic(ring, hops=0)
        with pytest.raises(NetworkError):
            neighbor_traffic(ring, hops=8)
        with pytest.raises(NetworkError):
            all_to_one_traffic(ring, "missing")
        with pytest.raises(NetworkError):
            random_pair_traffic(ring, pairs=0)

    def test_communication_validation(self):
        with pytest.raises(NetworkError):
            Communication(source="a", destination="a")
        with pytest.raises(NetworkError):
            Communication(source="a", destination="b", direction="diagonal")


class TestOrnocAssignment:
    def test_opposite_traffic_reuses_wavelengths(self, ring):
        network = OrnocNetwork(ring, opposite_traffic(ring), waveguide_count=4, channels_per_waveguide=4)
        assignments = network.assign_channels()
        assert len(assignments) == 8
        # Complementary halves of the ring can share a channel: at most 4
        # channels are needed for 8 opposite communications.
        assert network.channels_used() <= 4
        assert network.wavelength_reuse_factor() >= 2.0

    def test_no_channel_conflicts_on_overlapping_paths(self, ring):
        network = OrnocNetwork(ring, shift_traffic(ring, 3))
        assignments = network.assign_channels()
        by_channel = {}
        for assignment in assignments:
            key = (assignment.waveguide_index, assignment.channel_index)
            by_channel.setdefault(key, []).append(assignment.communication)
        for communications in by_channel.values():
            for index, first in enumerate(communications):
                for second in communications[index + 1 :]:
                    first_path = set(
                        ring.nodes_between(first.source, first.destination)
                        + [first.source]
                    )
                    second_path = set(
                        ring.nodes_between(second.source, second.destination)
                        + [second.source]
                    )
                    assert not (first_path & second_path), (
                        f"{first.name} and {second.name} overlap on a shared channel"
                    )

    def test_wavelengths_follow_channel_spacing(self, ring):
        technology = TechnologyParameters(channel_spacing_nm=2.0)
        network = OrnocNetwork(ring, neighbor_traffic(ring), technology=technology)
        assert network.channel_wavelength_nm(0) == pytest.approx(1550.0)
        assert network.channel_wavelength_nm(3) == pytest.approx(1556.0)
        with pytest.raises(NetworkError):
            network.channel_wavelength_nm(10)

    def test_unroutable_traffic_raises(self, ring):
        # All-to-all on 8 nodes needs far more than 1 waveguide x 1 channel.
        network = OrnocNetwork(
            ring, all_to_all_traffic(ring), waveguide_count=1, channels_per_waveguide=1
        )
        with pytest.raises(NetworkError, match="cannot be routed"):
            network.assign_channels()

    def test_receivers_at(self, ring):
        network = OrnocNetwork(ring, neighbor_traffic(ring))
        network.assign_channels()
        found = []
        for waveguide in range(network.waveguide_count):
            found.extend(network.receivers_at("oni_01", waveguide))
        assert len(found) == 1
        assert found[0].destination == "oni_01"

    def test_summary_and_utilization(self, ring):
        network = OrnocNetwork(ring, neighbor_traffic(ring))
        summary = network.summary()
        assert summary["communications"] == 8
        assert 0.0 < summary["utilization"] <= 1.0
        assert summary["max_path_length_m"] == pytest.approx(4.0e-3)

    def test_unknown_oni_in_communication_rejected(self, ring):
        with pytest.raises(NetworkError):
            OrnocNetwork(ring, [Communication(source="oni_00", destination="oni_99")])


class TestInsertionLoss:
    def test_loss_grows_with_path_length(self, ring):
        network = OrnocNetwork(ring, neighbor_traffic(ring))
        network.assign_channels()
        analyzer = InsertionLossAnalyzer(network)
        neighbor_loss = analyzer.worst_case_db()

        far_network = OrnocNetwork(ring, opposite_traffic(ring))
        far_network.assign_channels()
        far_loss = InsertionLossAnalyzer(far_network).worst_case_db()
        assert far_loss > neighbor_loss

    def test_loss_breakdown_components(self, ring):
        network = OrnocNetwork(ring, opposite_traffic(ring))
        network.assign_channels()
        analyzer = InsertionLossAnalyzer(network)
        losses = analyzer.all_path_losses()
        for loss in losses:
            assert loss.total_db == pytest.approx(
                loss.propagation_db + loss.through_db + loss.drop_db
            )
            assert loss.drop_db == pytest.approx(network.technology.mr_drop_loss_db)
        summary = analyzer.summary()
        assert summary["worst_case_db"] >= summary["average_db"] >= summary["best_case_db"]

    def test_unrouted_communication_rejected(self, ring):
        network = OrnocNetwork(ring, neighbor_traffic(ring))
        analyzer = InsertionLossAnalyzer(network)
        with pytest.raises(NetworkError):
            analyzer.path_loss(Communication(source="oni_00", destination="oni_01"))


class TestCrossbarBaselines:
    def test_ornoc_has_lowest_losses_at_4x4(self):
        """Section III.A: ORNoC reduces worst-case and average losses vs the
        Matrix, lambda-router and Snake crossbars (~42.5 % / 38 % at 4x4)."""
        losses = {loss.topology: loss for loss in compare_topologies(4)}
        ornoc = losses["ornoc"]
        for name in ("matrix", "lambda_router", "snake"):
            assert ornoc.worst_case_db < losses[name].worst_case_db
            assert ornoc.average_db < losses[name].average_db

        reductions = ornoc_reduction_factors(4)
        average_worst_case_reduction = sum(
            r["worst_case"] for r in reductions.values()
        ) / len(reductions)
        assert 0.2 <= average_worst_case_reduction <= 0.75

    def test_losses_grow_with_radix(self):
        for topology_class in (OrnocRingCrossbar, MatrixCrossbar, LambdaRouterCrossbar, SnakeCrossbar):
            small = topology_class(4).worst_case_loss_db()
            large = topology_class(8).worst_case_loss_db()
            assert large > small

    def test_worst_case_not_below_average(self):
        for loss in compare_topologies(6):
            assert loss.worst_case_db >= loss.average_db

    def test_invalid_radix(self):
        with pytest.raises(NetworkError):
            MatrixCrossbar(1)
        with pytest.raises(NetworkError):
            OrnocRingCrossbar(4, hop_length_mm=0.0)
