"""Tests for the rectilinear mesh builder and the mesh object."""

import numpy as np
import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.errors import MeshError
from repro.geometry import Box, Layer, LayerStack, MaterialBlock, Rect
from repro.materials import COPPER, EPOXY, SILICON
from repro.thermal import Mesh3D, MeshBuilder, build_ticks, merge_close_ticks


def simple_stack(side_mm=4.0):
    footprint = Rect.from_size_mm(0.0, 0.0, side_mm, side_mm)
    stack = LayerStack(footprint)
    stack.add_layer(Layer(name="bulk", thickness=300e-6, material=SILICON))
    stack.add_layer(Layer(name="lid", thickness=200e-6, material=COPPER))
    return stack


class TestBuildTicks:
    def test_uniform_ticks(self):
        ticks = build_ticks(0.0, 1.0, 0.25)
        assert np.allclose(ticks, [0.0, 0.25, 0.5, 0.75, 1.0])

    def test_refined_interval_gets_finer_cells(self):
        ticks = build_ticks(0.0, 1.0, 0.5, refinements=[(0.4, 0.6, 0.1)])
        spacings = np.diff(ticks)
        # The refined interval is meshed at 0.1, the rest no finer than needed.
        assert min(spacings) == pytest.approx(0.1, rel=1e-6)
        assert 0.4 in ticks and 0.6 in ticks

    def test_refinement_outside_domain_is_ignored(self):
        ticks = build_ticks(0.0, 1.0, 0.5, refinements=[(2.0, 3.0, 0.01)])
        assert ticks.size == 3

    def test_invalid_inputs(self):
        with pytest.raises(MeshError):
            build_ticks(1.0, 0.0, 0.1)
        with pytest.raises(MeshError):
            build_ticks(0.0, 1.0, -0.1)
        with pytest.raises(MeshError):
            build_ticks(0.0, 1.0, 0.5, refinements=[(0.0, 0.5, 0.0)])

    @given(
        st.floats(min_value=0.01, max_value=0.5),
        st.floats(min_value=0.0, max_value=0.5),
        st.floats(min_value=0.5, max_value=1.0),
    )
    @hyp_settings(max_examples=30, deadline=None)
    def test_ticks_are_strictly_increasing_and_span_domain(self, size, lo, hi):
        refinements = [(lo, hi, size / 2.0)] if hi > lo else []
        ticks = build_ticks(0.0, 1.0, size, refinements=refinements)
        assert ticks[0] == pytest.approx(0.0)
        assert ticks[-1] == pytest.approx(1.0)
        assert np.all(np.diff(ticks) > 0.0)

    def test_merge_close_ticks(self):
        ticks = np.array([0.0, 1e-12, 0.5, 0.5 + 1e-13, 1.0])
        merged = merge_close_ticks(ticks)
        assert merged.size == 3


class TestMeshBuilder:
    def test_basic_mesh_shape_and_materials(self):
        stack = simple_stack()
        builder = MeshBuilder(stack, base_cell_size_um=1000.0, vertical_target_um=150.0)
        mesh = builder.build()
        assert mesh.nx == 4 and mesh.ny == 4
        assert mesh.nz >= 3
        # Bottom cells are silicon, top cells are copper.
        assert mesh.k_lateral[0, 0, 0] == pytest.approx(SILICON.lateral_conductivity)
        assert mesh.k_lateral[0, 0, -1] == pytest.approx(COPPER.lateral_conductivity)

    def test_refinement_region_adds_cells(self):
        stack = simple_stack()
        coarse = MeshBuilder(stack, base_cell_size_um=1000.0).build()
        builder = MeshBuilder(stack, base_cell_size_um=1000.0)
        builder.add_refinement(Rect.from_size_mm(1.0, 1.0, 1.0, 1.0), cell_size_um=250.0)
        refined = builder.build()
        assert refined.n_cells > coarse.n_cells

    def test_block_material_overrides_layer(self):
        stack = simple_stack()
        stack.layer("bulk").add_block(
            MaterialBlock(
                name="epoxy_island",
                footprint=Rect.from_size_mm(1.0, 1.0, 1.0, 1.0),
                material=EPOXY,
            )
        )
        builder = MeshBuilder(stack, base_cell_size_um=500.0)
        mesh = builder.build()
        i, j, k = mesh.locate(1.5e-3, 1.5e-3, 100e-6)
        assert mesh.k_lateral[i, j, k] == pytest.approx(EPOXY.lateral_conductivity)

    def test_max_cells_enforced(self):
        stack = simple_stack()
        builder = MeshBuilder(stack, base_cell_size_um=10.0, max_cells=100)
        with pytest.raises(MeshError, match="above the configured limit"):
            builder.build()

    def test_region_restriction(self):
        stack = simple_stack()
        region = Rect.from_size_mm(1.0, 1.0, 2.0, 2.0)
        mesh = MeshBuilder(stack, base_cell_size_um=500.0, region=region).build()
        bounding = mesh.bounding_box()
        assert bounding.x_min == pytest.approx(1.0e-3)
        assert bounding.x_max == pytest.approx(3.0e-3)

    def test_region_outside_stack_rejected(self):
        stack = simple_stack()
        with pytest.raises(MeshError):
            MeshBuilder(stack, region=Rect.from_size_mm(-1.0, 0.0, 2.0, 2.0))

    def test_vertical_range_clipping(self):
        stack = simple_stack()
        mesh = MeshBuilder(
            stack, base_cell_size_um=1000.0, vertical_range=(100e-6, 400e-6)
        ).build()
        assert mesh.z_ticks[0] == pytest.approx(100e-6)
        assert mesh.z_ticks[-1] == pytest.approx(400e-6)

    def test_invalid_vertical_range(self):
        stack = simple_stack()
        with pytest.raises(MeshError):
            MeshBuilder(stack, vertical_range=(400e-6, 100e-6))

    def test_narrow_layer_padding_material(self):
        footprint = Rect.from_size_mm(0.0, 0.0, 6.0, 6.0)
        stack = LayerStack(footprint)
        die = Rect.from_size_mm(2.0, 2.0, 2.0, 2.0)
        stack.add_layer(
            Layer(
                name="die",
                thickness=200e-6,
                material=SILICON,
                footprint=die,
                padding_material=EPOXY,
            )
        )
        mesh = MeshBuilder(stack, base_cell_size_um=1000.0).build()
        i, j, k = mesh.locate(3e-3, 3e-3, 100e-6)
        assert mesh.k_lateral[i, j, k] == pytest.approx(SILICON.lateral_conductivity)
        i, j, k = mesh.locate(0.5e-3, 0.5e-3, 100e-6)
        assert mesh.k_lateral[i, j, k] == pytest.approx(EPOXY.lateral_conductivity)


class TestMesh3D:
    def _mesh(self):
        return MeshBuilder(simple_stack(), base_cell_size_um=1000.0).build()

    def test_cell_volumes_sum_to_domain_volume(self):
        mesh = self._mesh()
        box = mesh.bounding_box()
        assert mesh.cell_volumes().sum() == pytest.approx(box.volume, rel=1e-9)

    def test_locate_and_cell_box(self):
        mesh = self._mesh()
        i, j, k = mesh.locate(0.5e-3, 3.5e-3, 100e-6)
        cell = mesh.cell_box(i, j, k)
        assert cell.contains_point(0.5e-3, 3.5e-3, 100e-6)

    def test_locate_outside_raises(self):
        mesh = self._mesh()
        with pytest.raises(MeshError):
            mesh.locate(1.0, 1.0, 1.0)

    def test_flat_index_bounds(self):
        mesh = self._mesh()
        assert mesh.flat_index(0, 0, 0) == 0
        assert mesh.flat_index(mesh.nx - 1, mesh.ny - 1, mesh.nz - 1) == mesh.n_cells - 1
        with pytest.raises(MeshError):
            mesh.flat_index(mesh.nx, 0, 0)

    def test_box_overlap_volumes_conserves_volume(self):
        mesh = self._mesh()
        box = Box(0.2e-3, 0.2e-3, 50e-6, 1.7e-3, 0.9e-3, 250e-6)
        overlap = mesh.box_overlap_volumes(box)
        assert overlap.sum() == pytest.approx(box.volume, rel=1e-9)

    def test_box_outside_has_zero_overlap(self):
        mesh = self._mesh()
        box = Box(10.0, 10.0, 10.0, 11.0, 11.0, 11.0)
        assert mesh.box_overlap_volumes(box).sum() == 0.0

    def test_invalid_conductivity_arrays_rejected(self):
        mesh = self._mesh()
        bad = np.zeros(mesh.shape)
        with pytest.raises(MeshError):
            Mesh3D(mesh.x_ticks, mesh.y_ticks, mesh.z_ticks, bad, bad)

    def test_non_monotonic_ticks_rejected(self):
        mesh = self._mesh()
        bad_ticks = mesh.x_ticks.copy()
        bad_ticks[1] = bad_ticks[0]
        with pytest.raises(MeshError):
            Mesh3D(bad_ticks, mesh.y_ticks, mesh.z_ticks, mesh.k_lateral, mesh.k_vertical)
