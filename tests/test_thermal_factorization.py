"""Tests for the shared content-keyed sparse LU factorisation cache."""

import numpy as np
import pytest
from scipy import sparse

from repro.thermal import (
    FactorizationCache,
    clear_factorization_cache,
    factorization_cache_stats,
    factorize,
    matrix_content_key,
)


def spd_matrix(n=12, seed=0, scale=1.0):
    """A small sparse SPD matrix (diffusion-like tridiagonal plus noise)."""
    rng = np.random.default_rng(seed)
    diag = 2.0 + rng.random(n)
    off = -rng.random(n - 1)
    matrix = sparse.diags([off, diag, off], [-1, 0, 1], format="csc")
    return (scale * matrix).tocsc()


class TestMatrixContentKey:
    def test_content_addressed(self):
        a = spd_matrix(seed=1)
        b = spd_matrix(seed=1)
        assert a is not b
        assert matrix_content_key(a) == matrix_content_key(b)

    def test_layout_independent(self):
        a = spd_matrix(seed=2)
        assert matrix_content_key(a) == matrix_content_key(a.tocsr())
        assert matrix_content_key(a) == matrix_content_key(a.tocoo())

    def test_sensitive_to_values_and_pattern(self):
        a = spd_matrix(seed=3)
        scaled = spd_matrix(seed=3, scale=1.0 + 1e-12)
        assert matrix_content_key(a) != matrix_content_key(scaled)
        widened = sparse.lil_matrix(a)
        widened[0, 5] = 1.0e-30
        assert matrix_content_key(a) != matrix_content_key(widened.tocsc())
        assert matrix_content_key(a) != matrix_content_key(spd_matrix(n=13, seed=3))


class TestFactorizationCache:
    def test_reuse_is_keyed_by_content(self):
        cache = FactorizationCache()
        matrix = spd_matrix(seed=4)
        first, key, reused = cache.factorize(matrix)
        assert not reused
        # An independently assembled but identical matrix is served the same
        # factorisation object.
        second, same_key, reused = cache.factorize(spd_matrix(seed=4))
        assert reused and same_key == key and second is first
        other, other_key, reused = cache.factorize(spd_matrix(seed=5))
        assert not reused and other_key != key
        assert cache.stats() == {"built": 2, "reused": 1, "entries": 2}

    def test_served_factorization_solves_identically(self):
        cache = FactorizationCache()
        matrix = spd_matrix(seed=6)
        rhs = np.arange(matrix.shape[0], dtype=np.float64)
        built, _, _ = cache.factorize(matrix)
        served, _, reused = cache.factorize(spd_matrix(seed=6))
        assert reused
        np.testing.assert_array_equal(built.solve(rhs), served.solve(rhs))

    def test_precomputed_key_is_trusted(self):
        cache = FactorizationCache()
        matrix = spd_matrix(seed=7)
        key = matrix_content_key(matrix)
        _, returned, reused = cache.factorize(matrix, key=key)
        assert returned == key and not reused
        _, _, reused = cache.factorize(matrix, key=key)
        assert reused

    def test_lru_eviction_is_bounded(self):
        cache = FactorizationCache(max_entries=1)
        cache.factorize(spd_matrix(seed=8))
        cache.factorize(spd_matrix(seed=9))  # evicts seed-8
        assert len(cache) == 1
        _, _, reused = cache.factorize(spd_matrix(seed=8))
        assert not reused  # was evicted: rebuilt
        assert cache.stats()["built"] == 3

    def test_clear_keeps_lifetime_counters(self):
        cache = FactorizationCache()
        cache.factorize(spd_matrix(seed=10))
        cache.factorize(spd_matrix(seed=10))
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["built"] == 1 and stats["reused"] == 1


class TestSharedCache:
    def test_module_level_cache_round_trip(self):
        clear_factorization_cache()
        before = factorization_cache_stats()
        matrix = spd_matrix(seed=11)
        _, key, reused = factorize(matrix)
        assert not reused
        _, _, reused = factorize(spd_matrix(seed=11), key=key)
        assert reused
        after = factorization_cache_stats()
        assert after["built"] == before["built"] + 1
        assert after["reused"] == before["reused"] + 1
        clear_factorization_cache()
