"""Tests for the material models and the default library."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MaterialError
from repro.materials import (
    BEOL,
    COPPER,
    DEFAULT_LIBRARY,
    EPOXY,
    Material,
    MaterialLibrary,
    SILICON,
    SILICON_DIOXIDE,
    mixed_material,
)


class TestMaterial:
    def test_isotropic_material(self):
        material = Material(name="test", thermal_conductivity_w_mk=100.0)
        assert material.is_isotropic
        assert material.lateral_conductivity == 100.0
        assert material.vertical_conductivity == 100.0

    def test_anisotropic_material(self):
        material = Material(
            name="aniso",
            thermal_conductivity_w_mk=50.0,
            vertical_conductivity_w_mk=5.0,
        )
        assert not material.is_isotropic
        assert material.conductivity_along(0) == 50.0
        assert material.conductivity_along(1) == 50.0
        assert material.conductivity_along(2) == 5.0

    def test_conductivity_along_invalid_axis(self):
        with pytest.raises(MaterialError):
            SILICON.conductivity_along(3)

    def test_volumetric_heat_capacity(self):
        assert SILICON.volumetric_heat_capacity_j_m3k() == pytest.approx(
            2330.0 * 710.0
        )

    def test_rejects_non_physical_values(self):
        with pytest.raises(MaterialError):
            Material(name="bad", thermal_conductivity_w_mk=0.0)
        with pytest.raises(MaterialError):
            Material(name="bad", thermal_conductivity_w_mk=10.0, density_kg_m3=-1.0)
        with pytest.raises(MaterialError):
            Material(name="", thermal_conductivity_w_mk=10.0)
        with pytest.raises(MaterialError):
            Material(
                name="bad",
                thermal_conductivity_w_mk=10.0,
                vertical_conductivity_w_mk=0.0,
            )


class TestMixedMaterial:
    def test_pure_fractions_recover_constituents(self):
        pure_first = mixed_material("m", COPPER, EPOXY, first_fraction=1.0)
        assert pure_first.lateral_conductivity == pytest.approx(
            COPPER.lateral_conductivity
        )
        pure_second = mixed_material("m", COPPER, EPOXY, first_fraction=0.0)
        assert pure_second.vertical_conductivity == pytest.approx(
            EPOXY.vertical_conductivity
        )

    def test_lateral_is_arithmetic_and_vertical_is_harmonic(self):
        mix = mixed_material("m", COPPER, SILICON_DIOXIDE, first_fraction=0.5)
        arithmetic = 0.5 * (COPPER.lateral_conductivity + SILICON_DIOXIDE.lateral_conductivity)
        harmonic = 1.0 / (
            0.5 / COPPER.vertical_conductivity + 0.5 / SILICON_DIOXIDE.vertical_conductivity
        )
        assert mix.lateral_conductivity == pytest.approx(arithmetic)
        assert mix.vertical_conductivity == pytest.approx(harmonic)

    def test_vertical_never_exceeds_lateral(self):
        mix = mixed_material("m", COPPER, EPOXY, first_fraction=0.3)
        assert mix.vertical_conductivity <= mix.lateral_conductivity

    def test_invalid_fraction_rejected(self):
        with pytest.raises(MaterialError):
            mixed_material("m", COPPER, EPOXY, first_fraction=1.5)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_mixed_conductivities_bounded_by_constituents(self, fraction):
        mix = mixed_material("m", COPPER, EPOXY, first_fraction=fraction)
        low = min(COPPER.lateral_conductivity, EPOXY.lateral_conductivity)
        high = max(COPPER.lateral_conductivity, EPOXY.lateral_conductivity)
        assert low - 1e-9 <= mix.lateral_conductivity <= high + 1e-9
        assert low - 1e-9 <= mix.vertical_conductivity <= high + 1e-9

    def test_beol_composite_is_anisotropic(self):
        # Copper lines in oxide conduct much better laterally than vertically.
        assert BEOL.lateral_conductivity > 10.0 * BEOL.vertical_conductivity


class TestMaterialLibrary:
    def test_default_library_contains_standard_materials(self):
        for name in ("silicon", "copper", "epoxy", "beol", "optical_layer", "fr4"):
            assert name in DEFAULT_LIBRARY
            assert DEFAULT_LIBRARY.get(name).thermal_conductivity_w_mk > 0.0

    def test_unknown_material_raises_with_known_names(self):
        with pytest.raises(MaterialError, match="unknown material"):
            DEFAULT_LIBRARY.get("unobtanium")

    def test_register_and_retrieve(self):
        library = MaterialLibrary()
        custom = Material(name="custom_tim", thermal_conductivity_w_mk=8.0)
        library.register(custom)
        assert library.get("custom_tim") is custom

    def test_register_duplicate_requires_overwrite(self):
        library = MaterialLibrary()
        custom = Material(name="silicon", thermal_conductivity_w_mk=150.0)
        with pytest.raises(MaterialError):
            library.register(custom)
        library.register(custom, overwrite=True)
        assert library.get("silicon").thermal_conductivity_w_mk == 150.0

    def test_names_sorted_and_len(self):
        library = MaterialLibrary()
        names = library.names()
        assert names == sorted(names)
        assert len(library) == len(names)

    def test_constructor_accepts_extra_materials(self):
        extra = Material(name="diamond", thermal_conductivity_w_mk=2000.0)
        library = MaterialLibrary([extra])
        assert "diamond" in library
