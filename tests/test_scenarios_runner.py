"""Runner layer of the scenario subsystem: builders, paths, artifacts."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.methodology import SweepEngine, ThermalRequest
from repro.scenarios import (
    ALL_PATHS,
    ScenarioArtifact,
    ScenarioRunner,
    ScenarioSpec,
    TraceSpec,
    WorkloadSpec,
    build_trace,
    build_workload,
    compare_artifact_dicts,
    default_registry,
)
from repro.scenarios.spec import ChipSpec, MeshSpec, NetworkSpec


@pytest.fixture(scope="module")
def small_spec():
    return default_registry().get("small_die_uniform")


@pytest.fixture(scope="module")
def small_runner(small_spec):
    return ScenarioRunner(small_spec)


@pytest.fixture(scope="module")
def small_artifact(small_runner):
    return small_runner.run(ALL_PATHS)


class TestWorkloadBuilder:
    @pytest.fixture(scope="class")
    def floorplan(self, small_runner):
        return small_runner.architecture().floorplan

    @pytest.mark.parametrize(
        "kind", ["uniform", "diagonal", "random", "hotspot", "checkerboard", "gradient"]
    )
    def test_every_kind_materialises_with_conserved_power(self, floorplan, kind):
        workload = WorkloadSpec(kind=kind, total_power_w=12.0)
        pattern = build_workload(floorplan, workload)
        assert pattern.total_power_w == pytest.approx(12.0)

    def test_seed_distinguishes_random_workloads(self, floorplan):
        first = build_workload(floorplan, WorkloadSpec(kind="random", seed=0))
        second = build_workload(floorplan, WorkloadSpec(kind="random", seed=1))
        assert first.tile_powers_w != second.tile_powers_w

    def test_infrastructure_fraction_ignored_without_blocks(self, floorplan):
        # The small die has no infrastructure; the full power goes to tiles.
        pattern = build_workload(
            floorplan,
            WorkloadSpec(kind="uniform", total_power_w=10.0, infrastructure_fraction=0.4),
        )
        assert pattern.total_power_w == pytest.approx(10.0)

    def test_infrastructure_fraction_splits_on_scc_die(self):
        runner = ScenarioRunner(default_registry().get("scc_uniform_18mm"))
        floorplan = runner.architecture().floorplan
        pattern = build_workload(
            floorplan,
            WorkloadSpec(kind="uniform", total_power_w=20.0, infrastructure_fraction=0.25),
        )
        infra_power = sum(
            power
            for tile, power in pattern.tile_powers_w.items()
            if not tile.startswith("tile_")
        )
        assert pattern.total_power_w == pytest.approx(20.0)
        assert infra_power == pytest.approx(5.0)

    def test_hotspot_params_respected(self, floorplan):
        pattern = build_workload(
            floorplan,
            WorkloadSpec(
                kind="hotspot",
                total_power_w=10.0,
                params={"hotspot_fraction": 0.7, "hotspot_tiles": 1},
            ),
        )
        assert max(pattern.tile_powers_w.values()) == pytest.approx(7.0)


class TestTraceBuilder:
    @pytest.fixture(scope="class")
    def floorplan(self, small_runner):
        return small_runner.architecture().floorplan

    @pytest.fixture(scope="class")
    def base_activity(self, floorplan):
        workload = WorkloadSpec(kind="uniform", total_power_w=8.0)
        return build_workload(floorplan, workload)

    @pytest.mark.parametrize("kind", ["migration", "ramp", "random_walk", "two_phase"])
    def test_every_kind_materialises(self, floorplan, base_activity, kind):
        spec = TraceSpec(kind=kind, phases=4, phase_duration_s=1.5)
        trace = build_trace(
            floorplan, spec, WorkloadSpec(kind="uniform", total_power_w=8.0), base_activity
        )
        assert len(trace) == 4
        assert trace.total_duration_s == pytest.approx(6.0)

    def test_two_phase_alternates_low_and_high(self, floorplan, base_activity):
        spec = TraceSpec(kind="two_phase", phases=4, params={"low_fraction": 0.5})
        trace = build_trace(
            floorplan, spec, WorkloadSpec(kind="uniform", total_power_w=8.0), base_activity
        )
        powers = [phase.activity.total_power_w for phase in trace]
        assert powers[0] == pytest.approx(4.0)
        assert powers[1] == pytest.approx(8.0)
        assert powers[2] == pytest.approx(4.0)

    def test_equal_specs_build_identical_traces(self, floorplan, base_activity):
        workload = WorkloadSpec(kind="uniform", total_power_w=8.0)
        spec = TraceSpec(kind="migration", phases=3, seed=11)
        first = build_trace(floorplan, spec, workload, base_activity)
        second = build_trace(floorplan, spec, workload, base_activity)
        for phase_a, phase_b in zip(first, second):
            assert phase_a.activity.tile_powers_w == phase_b.activity.tile_powers_w

    def test_trace_seed_changes_migration(self, floorplan, base_activity):
        workload = WorkloadSpec(kind="uniform", total_power_w=8.0)
        first = build_trace(
            floorplan, TraceSpec(kind="migration", seed=0), workload, base_activity
        )
        second = build_trace(
            floorplan, TraceSpec(kind="migration", seed=1), workload, base_activity
        )
        assert any(
            a.activity.tile_powers_w != b.activity.tile_powers_w
            for a, b in zip(first, second)
        )


class TestRunnerPaths:
    def test_all_paths_present(self, small_artifact):
        assert sorted(small_artifact.results) == sorted(ALL_PATHS)

    def test_steady_section_shape(self, small_artifact):
        steady = small_artifact.section("steady")
        assert steady["zoomed_oni"] in steady["oni"]
        assert steady["gradient_c"] is not None
        assert len(steady["oni"]) == 4

    def test_sweep_section_tracks_scales(self, small_spec, small_artifact):
        sweep = small_artifact.section("sweep")
        assert len(sweep["vcsel_power_mw"]) == len(small_spec.sweep_scales)
        # More VCSEL power must heat the package monotonically.
        temps = sweep["average_oni_temperature_c"]
        assert temps == sorted(temps)

    def test_snr_section_shape(self, small_spec, small_artifact):
        snr = small_artifact.section("snr")
        assert len(snr["per_point"]) == len(small_spec.sweep_scales)
        nominal = snr["nominal"]
        assert nominal["worst_link"] in nominal["links"]
        assert nominal["worst_case_snr_db"] == pytest.approx(
            min(nominal["links"].values())
        )

    def test_transient_section_shape(self, small_spec, small_artifact):
        transient = small_artifact.section("transient")
        assert transient["recorded_steps"] > 0
        assert transient["duration_s"] == pytest.approx(
            small_spec.trace.phases * small_spec.trace.phase_duration_s
        )
        assert transient["snr"]["floor_db"] == small_spec.snr_floor_db

    def test_partial_path_selection(self, small_spec):
        artifact = ScenarioRunner(small_spec).run(["steady"])
        assert list(artifact.results) == ["steady"]

    def test_unknown_path_rejected(self, small_runner):
        with pytest.raises(ConfigurationError, match="unknown analysis paths"):
            small_runner.run(["steady", "quantum"])

    def test_transient_requires_a_trace(self):
        spec = ScenarioSpec(
            name="traceless",
            chip=ChipSpec(
                die_width_mm=14.0,
                die_height_mm=11.0,
                tile_columns=3,
                tile_rows=2,
                include_infrastructure=False,
            ),
            mesh=MeshSpec(die_cell_size_um=2000.0),
            network=NetworkSpec(ring_length_mm=9.0, oni_count=4),
            workload=WorkloadSpec(kind="uniform", total_power_w=8.0),
            trace=None,
        )
        artifact = ScenarioRunner(spec).run(ALL_PATHS)
        assert artifact.results["transient"] is None
        with pytest.raises(ConfigurationError, match="declares no trace"):
            ScenarioRunner(spec).trace()

    def test_steady_matches_direct_flow(self, small_runner, small_artifact):
        """The runner is sugar: its steady numbers equal the raw flow's."""
        flow = small_runner.flow()
        evaluation = flow.run_thermal(
            small_runner.activity(), power=small_runner.power_config()
        )
        steady = small_artifact.section("steady")
        assert steady["average_oni_temperature_c"] == pytest.approx(
            evaluation.average_oni_temperature_c, rel=1e-12
        )
        assert steady["gradient_c"] == pytest.approx(
            evaluation.gradient_c, rel=1e-12
        )

    def test_paths_share_one_engine_and_cache(self, small_spec):
        runner = ScenarioRunner(small_spec)
        runner.run(ALL_PATHS)
        engine = runner.engine()
        assert engine is SweepEngine.shared(runner.flow())
        stats = engine.stats
        # The nominal steady point plus the sweep grid; the SNR path reuses
        # the sweep's thermal evaluations through the cache.
        assert stats.points_requested > stats.thermal_solves
        assert stats.cache_hits > 0
        # Re-running the whole scenario is served from the caches.
        solves_before = stats.thermal_solves
        runner.run(ALL_PATHS)
        assert engine.stats.thermal_solves == solves_before

    def test_spec_network_overrides_reach_the_analyzer(self):
        base = default_registry().get("small_die_uniform")
        data = base.to_dict()
        data["name"] = "small_die_uniform_hop2"
        data["network"]["shift_hops"] = 2
        spec = ScenarioSpec.from_dict(data)
        runner = ScenarioRunner(spec)
        artifact = runner.run(["steady", "snr"])
        links = artifact.section("snr")["nominal"]["links"]
        # Two hops on a 4-ONI ring: oni_00 talks to oni_02, not oni_01.
        assert any("oni_00->oni_02" in name for name in links)


class TestArtifact:
    def test_json_round_trip(self, small_artifact):
        rebuilt = ScenarioArtifact.from_json(small_artifact.to_json())
        assert rebuilt.to_dict() == small_artifact.to_dict()

    def test_unknown_section_rejected(self, small_artifact):
        with pytest.raises(ConfigurationError, match="no 'nope' section"):
            small_artifact.section("nope")

    def test_malformed_document_rejected(self):
        with pytest.raises(ConfigurationError, match="spec_hash"):
            ScenarioArtifact.from_dict({"scenario": "x"})

    def test_artifact_embeds_spec_hash(self, small_spec, small_artifact):
        assert small_artifact.spec_hash == small_spec.content_hash()


class TestGoldenComparison:
    def test_identical_artifacts_agree(self, small_artifact):
        data = small_artifact.to_dict()
        assert compare_artifact_dicts(data, json.loads(json.dumps(data))) == []

    def test_temperature_drift_beyond_tolerance_detected(self, small_artifact):
        drifted = json.loads(small_artifact.to_json())
        drifted["results"]["steady"]["max_oni_temperature_c"] += 0.01
        mismatches = compare_artifact_dicts(small_artifact.to_dict(), drifted)
        assert len(mismatches) == 1
        assert "max_oni_temperature_c" in mismatches[0]

    def test_drift_within_tolerance_accepted(self, small_artifact):
        drifted = json.loads(small_artifact.to_json())
        drifted["results"]["steady"]["max_oni_temperature_c"] *= 1.0 + 1.0e-9
        assert compare_artifact_dicts(small_artifact.to_dict(), drifted) == []

    def test_structural_changes_detected(self, small_artifact):
        drifted = json.loads(small_artifact.to_json())
        del drifted["results"]["steady"]["gradient_c"]
        drifted["results"]["extra"] = 1
        mismatches = compare_artifact_dicts(small_artifact.to_dict(), drifted)
        assert any("missing keys" in m for m in mismatches)
        assert any("unexpected keys" in m for m in mismatches)

    def test_boolean_flip_detected(self, small_artifact):
        drifted = json.loads(small_artifact.to_json())
        point = drifted["results"]["snr"]["per_point"][0]
        point["all_detected"] = not point["all_detected"]
        mismatches = compare_artifact_dicts(small_artifact.to_dict(), drifted)
        assert any("all_detected" in m for m in mismatches)

    def test_per_link_snr_values_use_the_snr_band(self, small_artifact):
        # Link-name keys carry no suffix: they must inherit the SNR band of
        # their 'links' container (rtol 1e-4), not the default 1e-6 band.
        drifted = json.loads(small_artifact.to_json())
        links = drifted["results"]["snr"]["nominal"]["links"]
        name = next(iter(links))
        links[name] *= 1.0 + 5.0e-6  # within snr band, beyond default band
        assert compare_artifact_dicts(small_artifact.to_dict(), drifted) == []
        links[name] += 1.0e-2  # beyond the snr band
        mismatches = compare_artifact_dicts(small_artifact.to_dict(), drifted)
        assert len(mismatches) == 1 and name in mismatches[0]

    def test_integers_compare_exactly(self, small_artifact):
        drifted = json.loads(small_artifact.to_json())
        drifted["results"]["transient"]["recorded_steps"] += 1
        mismatches = compare_artifact_dicts(small_artifact.to_dict(), drifted)
        assert any("recorded_steps" in m for m in mismatches)

    def test_spec_hash_change_detected(self, small_artifact):
        drifted = json.loads(small_artifact.to_json())
        drifted["spec_hash"] = "0" * 64
        mismatches = compare_artifact_dicts(small_artifact.to_dict(), drifted)
        assert any("spec_hash" in m for m in mismatches)
