"""Tests for the sweep-execution engine (cache, batching, workers).

The engine is the execution substrate of every exploration helper, so these
tests pin down its contract: results identical to the point-by-point flow,
deduplication behind the content-derived evaluation key, batch chunking, and
the optional process pool across independent meshes.
"""

import random

import numpy as np
import pytest

from repro.activity import uniform_activity
from repro.casestudy import build_oni_ring_scenario
from repro.errors import ConfigurationError
from repro.methodology import (
    EngineStats,
    SweepEngine,
    SweepPoint,
    ThermalAwareDesignFlow,
    ThermalRequest,
    evaluation_key,
    sweep_average_temperature,
    sweep_heater_power,
)
from repro.oni import OniPowerConfig


def request_grid(flow, vcsel_powers_mw, zoom=None):
    activity = uniform_activity(flow.architecture.floorplan, 20.0)
    return [
        ThermalRequest(
            activity=activity,
            power=OniPowerConfig(vcsel_power_w=mw * 1.0e-3),
            zoom_oni=zoom,
        )
        for mw in vcsel_powers_mw
    ]


class TestEvaluationKey:
    def test_equal_content_equal_key(self, small_flow):
        first, second = request_grid(small_flow, [2.0, 2.0])
        assert evaluation_key("default", first) == evaluation_key("default", second)

    def test_distinguishes_power_zoom_and_flow(self, small_flow):
        base = request_grid(small_flow, [2.0])[0]
        other_power = request_grid(small_flow, [3.0])[0]
        zoomed = request_grid(small_flow, [2.0], zoom="auto")[0]
        key = evaluation_key("default", base)
        assert key != evaluation_key("default", other_power)
        assert key != evaluation_key("default", zoomed)
        assert key != evaluation_key("other", base)


class TestSweepEngine:
    def test_matches_point_by_point_flow(self, small_flow):
        requests = request_grid(small_flow, [0.0, 2.0, 4.0])
        engine = SweepEngine(small_flow)
        batched = engine.evaluate(requests)
        for request, evaluation in zip(requests, batched):
            direct = small_flow.run_thermal(
                request.activity, power=request.power, zoom_oni=None
            )
            assert np.allclose(
                evaluation.thermal_map.temperatures_c,
                direct.thermal_map.temperatures_c,
                atol=1e-9,
            )

    def test_cache_hits_across_calls(self, small_flow):
        engine = SweepEngine(small_flow)
        requests = request_grid(small_flow, [1.0, 2.0])
        first = engine.evaluate(requests)
        assert engine.stats.thermal_solves == 2
        second = engine.evaluate(requests)
        assert engine.stats.thermal_solves == 2
        assert engine.stats.cache_hits == 2
        for a, b in zip(first, second):
            assert a is b

    def test_duplicates_within_one_call_solved_once(self, small_flow):
        engine = SweepEngine(small_flow)
        request = request_grid(small_flow, [2.0])[0]
        results = engine.evaluate([request, request, request])
        assert engine.stats.thermal_solves == 1
        assert results[0] is results[1] is results[2]

    def test_batch_chunking(self, small_flow):
        engine = SweepEngine(small_flow, batch_size=2)
        engine.evaluate(request_grid(small_flow, [0.0, 1.0, 2.0, 3.0, 4.0]))
        assert engine.stats.batches == 3
        assert engine.stats.thermal_solves == 5

    def test_cache_eviction_does_not_corrupt_results(self, small_flow):
        engine = SweepEngine(small_flow, max_cache_entries=1)
        requests = request_grid(small_flow, [0.0, 2.0, 4.0])
        results = engine.evaluate(requests)
        assert len(results) == 3
        assert engine.cache_size == 1

    def test_invalidate_caches_invalidates_engine_cache(self, coarse_architecture):
        scenario = build_oni_ring_scenario(
            coarse_architecture, 18.0, oni_count=4, name="invalidate"
        )
        flow = ThermalAwareDesignFlow(coarse_architecture, scenario)
        engine = SweepEngine.shared(flow)
        request = request_grid(flow, [2.0])[0]
        engine.evaluate([request])
        assert engine.stats.thermal_solves == 1
        engine.evaluate([request])
        assert engine.stats.thermal_solves == 1
        flow.invalidate_caches()
        # Pre-invalidation evaluations must not be served any more.
        engine.evaluate([request])
        assert engine.stats.thermal_solves == 2

    def test_run_thermal_many_chunking_matches_single_batch(self, small_flow):
        requests = request_grid(small_flow, [0.0, 1.0, 2.0])
        chunked = small_flow.run_thermal_many(requests, batch_size=2)
        single = small_flow.run_thermal_many(requests, batch_size=None)
        for a, b in zip(chunked, single):
            assert np.array_equal(
                a.thermal_map.temperatures_c, b.thermal_map.temperatures_c
            )
        with pytest.raises(ConfigurationError):
            small_flow.run_thermal_many(requests, batch_size=0)

    def test_shared_engine_is_per_flow(self, small_flow, coarse_architecture):
        assert SweepEngine.shared(small_flow) is SweepEngine.shared(small_flow)
        other_scenario = build_oni_ring_scenario(
            coarse_architecture, ring_length_mm=18.0, oni_count=4, name="other"
        )
        other_flow = ThermalAwareDesignFlow(coarse_architecture, other_scenario)
        assert SweepEngine.shared(other_flow) is not SweepEngine.shared(small_flow)

    def test_validation(self, small_flow):
        with pytest.raises(ConfigurationError):
            SweepEngine({})
        with pytest.raises(ConfigurationError):
            SweepEngine(small_flow, batch_size=0)
        with pytest.raises(ConfigurationError):
            SweepEngine(small_flow, workers=0)
        with pytest.raises(ConfigurationError):
            SweepEngine(small_flow, max_cache_entries=0)
        engine = SweepEngine(small_flow)
        request = request_grid(small_flow, [1.0])[0]
        with pytest.raises(ConfigurationError):
            engine.evaluate([SweepPoint(request=request, flow_key="missing")])
        with pytest.raises(ConfigurationError):
            engine.flow("missing")


class TestWorkerPool:
    def test_workers_match_serial_results(self, coarse_architecture):
        scenarios = {
            "short": build_oni_ring_scenario(
                coarse_architecture, 18.0, oni_count=4, name="short"
            ),
            "long": build_oni_ring_scenario(
                coarse_architecture, 46.8, oni_count=4, name="long"
            ),
        }
        flows = {
            name: ThermalAwareDesignFlow(coarse_architecture, scenario)
            for name, scenario in scenarios.items()
        }
        activity = uniform_activity(coarse_architecture.floorplan, 20.0)
        plan = [
            SweepPoint(
                request=ThermalRequest(activity=activity, zoom_oni=None),
                flow_key=name,
            )
            for name in flows
        ]
        serial = SweepEngine(flows).evaluate(plan)
        pooled_engine = SweepEngine(flows, workers=2)
        pooled = pooled_engine.evaluate(plan)
        assert pooled_engine.stats.worker_batches == 2
        for serial_eval, pooled_eval in zip(serial, pooled):
            assert np.allclose(
                pooled_eval.thermal_map.temperatures_c,
                serial_eval.thermal_map.temperatures_c,
                atol=1e-9,
            )

    def test_single_flow_ignores_workers(self, small_flow):
        engine = SweepEngine(small_flow, workers=4)
        results = engine.evaluate(request_grid(small_flow, [1.0, 3.0]))
        assert len(results) == 2
        assert engine.stats.worker_batches == 0
        assert engine.stats.batches == 1


class TestSnrEvaluation:
    """evaluate_snr: thermal cache + batched SNR + report cache."""

    def _drive(self):
        from repro.snr import LaserDriveConfig

        return LaserDriveConfig.from_dissipated_mw(3.6)

    def test_matches_point_by_point_run_snr(self, small_flow):
        engine = SweepEngine(small_flow)
        requests = request_grid(small_flow, [2.0, 4.0])
        reports = engine.evaluate_snr(requests, self._drive())
        evaluations = engine.evaluate(requests)
        for request, evaluation, report in zip(requests, evaluations, reports):
            direct = small_flow.run_snr(evaluation, self._drive())
            assert report.worst_case_snr_db == direct.worst_case_snr_db
            assert [l.communication.name for l in report.links] == [
                l.communication.name for l in direct.links
            ]

    def test_snr_reports_are_cached(self, small_flow):
        engine = SweepEngine(small_flow)
        requests = request_grid(small_flow, [1.0, 3.0])
        drive = self._drive()
        first = engine.evaluate_snr(requests, drive)
        assert engine.stats.snr_evaluations == 2
        assert engine.stats.snr_batches == 1
        second = engine.evaluate_snr(requests, drive)
        assert engine.stats.snr_evaluations == 2
        assert engine.stats.snr_cache_hits == 2
        for a, b in zip(first, second):
            assert a is b

    def test_drive_is_part_of_the_key(self, small_flow):
        from repro.snr import LaserDriveConfig

        engine = SweepEngine(small_flow)
        request = request_grid(small_flow, [2.0])[0]
        engine.evaluate_snr([request], LaserDriveConfig.from_dissipated_mw(3.6))
        engine.evaluate_snr([request], LaserDriveConfig.from_dissipated_mw(2.0))
        # Different drives are distinct SNR evaluations on one thermal solve.
        assert engine.stats.snr_evaluations == 2
        assert engine.stats.thermal_solves == 1

    def test_duplicates_within_one_call_evaluated_once(self, small_flow):
        engine = SweepEngine(small_flow)
        request = request_grid(small_flow, [2.0])[0]
        reports = engine.evaluate_snr([request, request], self._drive())
        assert engine.stats.snr_evaluations == 1
        assert reports[0] is reports[1]

    def test_unknown_flow_key_rejected(self, small_flow):
        engine = SweepEngine(small_flow)
        request = request_grid(small_flow, [2.0])[0]
        with pytest.raises(ConfigurationError):
            engine.evaluate_snr(
                [SweepPoint(request=request, flow_key="missing")], self._drive()
            )

    def test_clear_cache_drops_snr_reports(self, small_flow):
        engine = SweepEngine(small_flow)
        engine.evaluate_snr(request_grid(small_flow, [2.0]), self._drive())
        assert engine.snr_cache_size == 1
        engine.clear_cache()
        assert engine.snr_cache_size == 0


class TestHelpersRouteThroughEngine:
    def test_sweeps_share_the_flow_engine(self, small_flow, uniform_25w):
        engine = SweepEngine.shared(small_flow)
        engine.clear_cache()
        requested_before = engine.stats.points_requested
        sweep_average_temperature(
            small_flow, chip_powers_w=[12.5], vcsel_powers_mw=[0.0, 4.0], fast=True
        )
        assert engine.stats.points_requested == requested_before + 2
        solves_after_first = engine.stats.thermal_solves
        # Re-running the same grid is served from the evaluation cache.
        sweep_average_temperature(
            small_flow, chip_powers_w=[12.5], vcsel_powers_mw=[0.0, 4.0], fast=True
        )
        assert engine.stats.thermal_solves == solves_after_first

    def test_heater_sweep_dedups_repeated_points(self, small_flow, uniform_25w):
        engine = SweepEngine.shared(small_flow)
        engine.clear_cache()
        hits_before = engine.stats.cache_hits
        sweep_heater_power(
            small_flow, uniform_25w, vcsel_powers_mw=[4.0], heater_powers_mw=[0.0, 1.6]
        )
        sweep_heater_power(
            small_flow, uniform_25w, vcsel_powers_mw=[4.0], heater_powers_mw=[1.6, 8.0]
        )
        # The (4.0, 1.6) point of the second sweep is a cache hit.
        assert engine.stats.cache_hits > hits_before


class TestEngineStatsMergeIdentity:
    """Campaign stats aggregation must not depend on the execution substrate.

    Executors differ in how per-worker counter dicts come back — order
    (completion vs submission), grouping (one dict per spec vs per worker
    batch) — so ``merge`` must be a commutative, associative fold: any
    permutation or partition of the same per-worker dicts yields identical
    totals.  Randomized with a pinned seed so failures replay.
    """

    COUNTERS = list(EngineStats.COUNTER_NAMES)

    def random_stats_dicts(self, rng, count):
        return [
            {name: rng.randrange(0, 1000) for name in self.COUNTERS}
            for _ in range(count)
        ]

    def fold(self, dicts):
        total = EngineStats()
        for counters in dicts:
            total.merge(counters)
        return total.to_dict()

    def test_merge_totals_invariant_under_permutation(self):
        rng = random.Random(0xD47E)
        for _ in range(25):
            dicts = self.random_stats_dicts(rng, rng.randrange(1, 9))
            reference = self.fold(dicts)
            shuffled = list(dicts)
            rng.shuffle(shuffled)
            assert self.fold(shuffled) == reference
            assert reference == {
                name: sum(d[name] for d in dicts) for name in self.COUNTERS
            }

    def test_merge_totals_invariant_under_partition(self):
        # Group the worker dicts arbitrarily, fold each group into a
        # subtotal EngineStats, then merge the subtotals (as live objects):
        # same totals as the flat fold.
        rng = random.Random(0xA6)
        for _ in range(25):
            dicts = self.random_stats_dicts(rng, rng.randrange(2, 10))
            reference = self.fold(dicts)
            groups = [[] for _ in range(rng.randrange(1, len(dicts) + 1))]
            for counters in dicts:
                rng.choice(groups).append(counters)
            total = EngineStats()
            for group in groups:
                subtotal = EngineStats()
                for counters in group:
                    subtotal.merge(counters)
                total.merge(subtotal)
            assert total.to_dict() == reference

    def test_merge_accepts_sparse_mappings_and_returns_self(self):
        stats = EngineStats()
        assert stats.merge({"cache_hits": 3}) is stats
        stats.merge({"cache_hits": 2, "thermal_solves": 1})
        assert stats.cache_hits == 5 and stats.thermal_solves == 1

    def test_merge_rejects_unknown_counters(self):
        with pytest.raises(ConfigurationError, match="unknown engine stats"):
            EngineStats().merge({"cache_hits": 1, "warp_drive": 9})
