"""Smoke tests of the public API surface.

These tests guard the names re-exported from ``repro`` (the documented entry
points of the library) and the README quickstart flow on a tiny configuration.
"""

import pytest

import repro


class TestPublicApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") >= 1

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"{name} listed in __all__ but missing"

    def test_key_entry_points_exported(self):
        for name in (
            "ThermalAwareDesignFlow",
            "build_scc_architecture",
            "build_oni_ring_scenario",
            "build_standard_scenarios",
            "OniPowerConfig",
            "LaserDriveConfig",
            "SnrAnalyzer",
            "MeshBuilder",
            "SteadyStateSolver",
            "ZoomSolver",
            "VcselModel",
            "MicroringModel",
            "uniform_activity",
            "standard_activities",
            "format_table",
        ):
            assert name in repro.__all__

    def test_exceptions_derive_from_repro_error(self):
        from repro.errors import (
            AnalysisError,
            ConfigurationError,
            DeviceError,
            GeometryError,
            MaterialError,
            MeshError,
            NetworkError,
            ReproError,
            SolverError,
        )

        for exc in (
            GeometryError,
            MaterialError,
            MeshError,
            SolverError,
            DeviceError,
            NetworkError,
            AnalysisError,
            ConfigurationError,
        ):
            assert issubclass(exc, ReproError)


class TestReadmeQuickstart:
    def test_quickstart_flow_on_small_configuration(self, small_flow, uniform_25w):
        """The README quickstart, on the shared coarse fixtures."""
        power = repro.OniPowerConfig(vcsel_power_w=3.6e-3).with_heater_ratio(0.3)
        result = small_flow.evaluate_design_point(
            uniform_25w, power, drive=repro.LaserDriveConfig.from_dissipated_mw(3.6)
        )
        assert result.thermal.average_oni_temperature_c > 35.0
        assert result.gradient_c >= 0.0
        assert result.worst_case_snr_db > 0.0
        assert result.snr.all_detected
