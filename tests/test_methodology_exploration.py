"""Tests for the design-space exploration sweeps and the optimisation helpers.

These tests exercise the same code paths as the paper's Figures 9, 10 and 12,
on a deliberately small configuration so they run quickly; the benchmarks run
the paper-scale versions.
"""

import pytest

from repro.activity import standard_activities, uniform_activity
from repro.casestudy import build_oni_ring_scenario
from repro.errors import AnalysisError, ConfigurationError
from repro.methodology import (
    ThermalAwareDesignFlow,
    compare_heater_options,
    find_minimum_vcsel_power,
    find_optimal_heater_ratio,
    format_table,
    gradient_slope_c_per_mw,
    pivot,
    rows_from_dataclasses,
    snr_across_scenarios,
    sweep_average_temperature,
    sweep_heater_power,
    write_csv,
)


class TestSweeps:
    def test_average_temperature_sweep_monotone(self, small_flow):
        """Figure 9-a behaviour: temperature grows with chip power and PVCSEL."""
        points = sweep_average_temperature(
            small_flow,
            chip_powers_w=[12.5, 25.0],
            vcsel_powers_mw=[0.0, 4.0],
            fast=True,
        )
        assert len(points) == 4
        by_key = {
            (p.chip_power_w, p.vcsel_power_mw): p.average_oni_temperature_c
            for p in points
        }
        assert by_key[(25.0, 0.0)] > by_key[(12.5, 0.0)]
        assert by_key[(12.5, 4.0)] > by_key[(12.5, 0.0)]
        assert by_key[(25.0, 4.0)] > by_key[(25.0, 0.0)]

    def test_heater_sweep_shows_interior_minimum(self, small_flow, uniform_25w):
        """Figure 9-b behaviour: the gradient is minimised at an intermediate
        heater power, not at zero and not at the maximum."""
        points = sweep_heater_power(
            small_flow,
            uniform_25w,
            vcsel_powers_mw=[4.0],
            heater_powers_mw=[0.0, 1.6, 8.0],
        )
        gradients = {p.heater_power_mw: p.gradient_c for p in points}
        assert gradients[1.6] < gradients[0.0]
        assert gradients[1.6] < gradients[8.0]

    def test_compare_heater_options_matches_paper_trends(self, small_flow, uniform_25w):
        """Figure 10 behaviour: the heater cuts the gradient at a small average
        temperature cost, and the no-heater gradient grows with PVCSEL."""
        points = compare_heater_options(
            small_flow, uniform_25w, vcsel_powers_mw=[2.0, 6.0], heater_ratio=0.3
        )
        assert len(points) == 2
        for point in points:
            assert point.with_heater_gradient_c < point.without_heater_gradient_c
            assert point.with_heater_average_c >= point.without_heater_average_c - 0.1
            assert point.with_heater_average_c - point.without_heater_average_c < 3.0
        slope = gradient_slope_c_per_mw(points)
        assert slope > 0.2

    def test_sweep_argument_validation(self, small_flow, uniform_25w):
        with pytest.raises(ConfigurationError):
            sweep_average_temperature(small_flow, [], [1.0])
        with pytest.raises(ConfigurationError):
            sweep_heater_power(small_flow, uniform_25w, [], [1.0])
        with pytest.raises(ConfigurationError):
            compare_heater_options(small_flow, uniform_25w, [])
        with pytest.raises(ConfigurationError):
            gradient_slope_c_per_mw([])


class TestScenarioSnr:
    def test_snr_across_scenarios_shape(self, coarse_architecture):
        """Figure 12 behaviour: diagonal activity yields a lower SNR than
        uniform, and crosstalk grows with the activity imbalance."""
        scenarios = {
            "short": build_oni_ring_scenario(
                coarse_architecture, 18.0, oni_count=6, name="short"
            ),
            "long": build_oni_ring_scenario(
                coarse_architecture, 46.8, oni_count=6, name="long"
            ),
        }
        activities = standard_activities(coarse_architecture.floorplan, 25.0)
        points = snr_across_scenarios(
            coarse_architecture,
            scenarios,
            activities={"uniform": activities["uniform"], "diagonal": activities["diagonal"]},
        )
        assert len(points) == 4
        by_key = {(p.scenario, p.activity): p for p in points}
        for scenario_name in ("short", "long"):
            uniform_point = by_key[(scenario_name, "uniform")]
            diagonal_point = by_key[(scenario_name, "diagonal")]
            assert diagonal_point.worst_case_snr_db <= uniform_point.worst_case_snr_db
            assert (
                diagonal_point.max_crosstalk_power_mw
                >= uniform_point.max_crosstalk_power_mw
            )
        # Longer rings see more propagation loss and a larger temperature
        # spread, hence more crosstalk under the skewed activity.
        assert (
            by_key[("long", "diagonal")].max_crosstalk_power_mw
            >= by_key[("short", "diagonal")].max_crosstalk_power_mw
        )

    def test_empty_scenarios_rejected(self, coarse_architecture):
        with pytest.raises(ConfigurationError):
            snr_across_scenarios(coarse_architecture, {})


class TestOptimization:
    def test_optimal_heater_ratio_is_interior(self, small_flow, uniform_25w):
        """Section V.B headline: the optimal heater power is a sizeable
        fraction of PVCSEL (the paper finds 0.3), strictly between 0 and 1."""
        result = find_optimal_heater_ratio(
            small_flow,
            uniform_25w,
            vcsel_power_mw=4.0,
            ratio_bounds=(0.0, 1.0),
            tolerance=0.05,
            max_evaluations=12,
        )
        assert 0.05 < result.optimal_ratio < 0.95
        assert result.optimal_gradient_c > 0.0
        assert result.evaluation_count >= 3
        no_heater_gradient = max(g for r, g in result.evaluations if r <= 0.06) if any(
            r <= 0.06 for r, _ in result.evaluations
        ) else None
        if no_heater_gradient is not None:
            assert result.optimal_gradient_c <= no_heater_gradient

    def test_minimum_vcsel_power_meets_target(self, small_flow, uniform_25w):
        result = find_minimum_vcsel_power(
            small_flow,
            uniform_25w,
            target_snr_db=20.0,
            power_bounds_mw=(1.0, 6.0),
            tolerance_mw=0.5,
        )
        assert 1.0 <= result.minimum_vcsel_power_mw <= 6.0
        assert result.achieved_snr_db >= 20.0

    def test_unreachable_snr_target_raises(self, small_flow, uniform_25w):
        with pytest.raises(AnalysisError):
            find_minimum_vcsel_power(
                small_flow, uniform_25w, target_snr_db=200.0, power_bounds_mw=(1.0, 2.0)
            )

    def test_invalid_optimisation_arguments(self, small_flow, uniform_25w):
        with pytest.raises(ConfigurationError):
            find_optimal_heater_ratio(small_flow, uniform_25w, vcsel_power_mw=0.0)
        with pytest.raises(ConfigurationError):
            find_optimal_heater_ratio(
                small_flow, uniform_25w, vcsel_power_mw=1.0, ratio_bounds=(0.5, 0.2)
            )
        with pytest.raises(ConfigurationError):
            find_minimum_vcsel_power(
                small_flow, uniform_25w, 10.0, power_bounds_mw=(2.0, 1.0)
            )


class TestReporting:
    def test_format_table_and_pivot(self):
        rows = [
            {"x": 1.0, "y": "a", "value": 1.5},
            {"x": 2.0, "y": "a", "value": 2.5},
            {"x": 1.0, "y": "b", "value": 3.5},
        ]
        table = format_table(rows, title="demo")
        assert "demo" in table
        assert "value" in table
        assert "1.500" in table
        pivoted = pivot(rows, index="x", column="y", value="value")
        assert "a" in pivoted and "b" in pivoted

    def test_rows_from_dataclasses_roundtrip(self, small_flow, uniform_25w):
        points = sweep_average_temperature(
            small_flow, chip_powers_w=[12.5], vcsel_powers_mw=[0.0], fast=True
        )
        rows = rows_from_dataclasses(points)
        assert rows[0]["chip_power_w"] == 12.5

    def test_write_csv(self, tmp_path):
        rows = [{"a": 1, "b": 2.0}, {"a": 3, "b": 4.0}]
        path = write_csv(rows, tmp_path / "out.csv")
        content = path.read_text().splitlines()
        assert content[0] == "a,b"
        assert len(content) == 3

    def test_empty_table_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([])
        with pytest.raises(ConfigurationError):
            write_csv([], "nowhere.csv")
        with pytest.raises(ConfigurationError):
            rows_from_dataclasses([object()])
