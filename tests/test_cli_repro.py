"""``python -m repro`` CLI: run / list / show / diff end to end."""

import json

import pytest

from repro.campaigns.cli import main
from repro.campaigns import ArtifactStore, get_matrix
from repro.scenarios import ScenarioSpec


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestList:
    def test_lists_campaigns_and_population(self, capsys):
        code, out, _ = run_cli(capsys, "list")
        assert code == 0
        assert "campaign_smoke" in out
        assert "ring_geometry" in out
        assert "scenarios:" in out

    def test_verbose_lists_every_scenario(self, capsys):
        code, out, _ = run_cli(capsys, "list", "-v")
        assert code == 0
        assert "workload_grid-kind_checkerboard-pw_16" in out

    def test_lists_store_entries(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        code, out, _ = run_cli(
            capsys,
            "run",
            "campaign_smoke",
            "--store",
            store_dir,
            "--paths",
            "steady",
        )
        assert code == 0
        code, out, _ = run_cli(capsys, "list", "--store", store_dir)
        assert code == 0
        assert "4 artifacts" in out


class TestShow:
    def test_show_campaign(self, capsys):
        code, out, _ = run_cli(capsys, "show", "campaign_smoke")
        assert code == 0
        assert "axis kind (workload.kind)" in out
        assert "campaign_smoke-kind_hotspot-pvcsel_4.8" in out

    def test_show_scenario_spec_is_valid_json(self, capsys):
        code, out, _ = run_cli(capsys, "show", "scc_case_study")
        assert code == 0
        spec = ScenarioSpec.from_json(out)
        assert spec.name == "scc_case_study"

    def test_show_unknown_name_fails(self, capsys):
        code, _, err = run_cli(capsys, "show", "nonsense")
        assert code == 2
        assert "neither" in err


class TestRunAndDiff:
    def test_run_cold_then_warm(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        report_path = tmp_path / "report.json"
        code, out, _ = run_cli(
            capsys,
            "run",
            "campaign_smoke",
            "--store",
            store_dir,
            "--paths",
            "steady,snr",
            "--workers",
            "2",
            "--output",
            str(report_path),
        )
        assert code == 0
        assert "4 scenarios (0 from store, 4 computed)" in out
        assert "worst_snr_db:" in out
        report = json.loads(report_path.read_text())
        assert report["summary"]["store_misses"] == 4

        code, out, _ = run_cli(
            capsys,
            "run",
            "campaign_smoke",
            "--store",
            store_dir,
            "--paths",
            "steady,snr",
        )
        assert code == 0
        assert "4 from store, 0 computed" in out
        assert "hit rate 100%" in out

        # diff: equal stored artifacts agree; a perturbed copy does not.
        store = ArtifactStore(store_dir)
        entries = store.entries()
        key = entries[0].key
        code, out, _ = run_cli(
            capsys, "diff", key[:12], key[:12], "--store", store_dir
        )
        assert code == 0
        assert "agree" in out

        perturbed = tmp_path / "perturbed.json"
        record = store.get_record(key)
        payload = dict(record["payload"])
        payload["results"] = json.loads(json.dumps(payload["results"]))
        payload["results"]["steady"]["max_oni_temperature_c"] += 1.0
        perturbed.write_text(json.dumps(payload))
        code, out, _ = run_cli(
            capsys, "diff", key[:12], str(perturbed), "--store", store_dir
        )
        assert code == 1
        assert "max_oni_temperature_c" in out

    def test_diff_artifact_against_report_file(self, capsys, tmp_path):
        """The README workflow: diff a stored key against a report JSON."""
        store_dir = str(tmp_path / "store")
        report_path = tmp_path / "report.json"
        code, _, _ = run_cli(
            capsys,
            "run",
            "campaign_smoke",
            "--store",
            store_dir,
            "--paths",
            "steady",
            "--output",
            str(report_path),
        )
        assert code == 0
        store = ArtifactStore(store_dir)
        for entry in store.entries():
            code, out, _ = run_cli(
                capsys,
                "diff",
                entry.key[:12],
                str(report_path),
                "--store",
                store_dir,
            )
            assert code == 0, out
            assert "agree" in out
        # Report vs report compares every scenario's artifact at once.
        code, out, _ = run_cli(
            capsys, "diff", str(report_path), str(report_path)
        )
        assert code == 0
        assert "agree" in out

    def test_run_unknown_campaign(self, capsys):
        code, _, err = run_cli(capsys, "run", "bogus")
        assert code == 2
        assert "unknown campaign" in err

    def test_diff_on_missing_operand(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "diff", "missing_a", "missing_b"
        )
        assert code == 2
        assert "neither" in err

    def test_diff_on_malformed_json_file(self, capsys, tmp_path):
        broken = tmp_path / "broken.json"
        broken.write_text("{ not json")
        code, _, err = run_cli(capsys, "diff", str(broken), str(broken))
        assert code == 2
        assert "cannot read" in err

    def test_run_rejects_empty_paths(self, capsys):
        code, _, err = run_cli(capsys, "run", "campaign_smoke", "--paths", ",")
        assert code == 2
        assert "at least one analysis" in err


class TestSeedRomAndWarmStart:
    def test_seed_then_warm_started_rom_run(self, capsys, tmp_path):
        from repro.thermal import clear_installed_bases

        store_dir = str(tmp_path / "store")
        code, out, _ = run_cli(
            capsys, "seed-rom", "campaign_smoke", "--store", store_dir
        )
        assert code == 0
        assert "4 reduced bases persisted from 4 scenarios" in out
        assert len(ArtifactStore(store_dir).rom_basis_payloads()) == 4

        report_path = tmp_path / "report.json"
        try:
            code, out, _ = run_cli(
                capsys,
                "run",
                "campaign_smoke",
                "--store",
                store_dir,
                "--transient-method",
                "auto",
                "--warm-start",
                "--output",
                str(report_path),
            )
        finally:
            clear_installed_bases()
        assert code == 0
        assert "warm start: 4 reduced bases from the store" in out
        assert "transient_rom_solves=4" in out
        assert "rom_hits=4" in out
        # Zero counters are omitted from the deterministic engine line.
        assert "transient_lu_solves" not in out
        assert "rom_fallbacks" not in out
        report = json.loads(report_path.read_text())
        assert report["engine"]["transient_rom_solves"] == 4
        for artifact in report["artifacts"].values():
            assert artifact["results"]["transient"]["solver"]["method"] == "rom"

    def test_warm_start_requires_a_store(self, capsys):
        code, _, err = run_cli(
            capsys, "run", "campaign_smoke", "--warm-start"
        )
        assert code == 2
        assert "--warm-start needs a --store" in err

    def test_seed_rom_requires_a_store(self, capsys):
        # argparse enforces --store on the producer side.
        with pytest.raises(SystemExit):
            main(["seed-rom", "campaign_smoke"])
        _, err = capsys.readouterr()
        assert "--store" in err


class TestTraceAndStats:
    @pytest.fixture(scope="class")
    def telemetry_report(self, tmp_path_factory):
        """One telemetry-enabled campaign run, shared by the class."""
        report_path = tmp_path_factory.mktemp("trace") / "report.json"
        code = main(
            [
                "run",
                "campaign_smoke",
                "--paths",
                "steady",
                "--telemetry",
                "--output",
                str(report_path),
            ]
        )
        assert code == 0
        return report_path

    def test_run_reports_engine_counters_sorted(self, capsys, telemetry_report):
        report = json.loads(telemetry_report.read_text())
        assert report["telemetry"]["enabled"] is True
        # The deterministic engine line: sorted, non-zero counters only.
        code, out, _ = run_cli(capsys, "stats", str(telemetry_report))
        assert code == 0
        engine_line = next(
            line for line in out.splitlines() if line.startswith("engine:")
        )
        names = [part.split("=")[0] for part in engine_line[8:].split(", ")]
        assert names == sorted(names)
        assert "thermal_solves" in names

    def test_stats_prints_counters_and_span_aggregates(
        self, capsys, telemetry_report
    ):
        code, out, _ = run_cli(capsys, "stats", str(telemetry_report))
        assert code == 0
        assert "counter executor.dispatches = 4" in out
        assert "span campaign:campaign_smoke: 1x" in out
        assert "span path.steady: 4x" in out

    def test_stats_snapshot_without_report(self, capsys):
        code, out, _ = run_cli(capsys, "stats")
        assert code == 0
        snapshot = json.loads(out)
        assert snapshot["enabled"] is False
        assert "metrics" in snapshot

    def test_trace_renders_report_and_writes_chrome_json(
        self, capsys, telemetry_report, tmp_path
    ):
        chrome_path = tmp_path / "trace.json"
        code, out, _ = run_cli(
            capsys,
            "trace",
            str(telemetry_report),
            "--output",
            str(chrome_path),
        )
        assert code == 0
        assert "campaign campaign_smoke:" in out
        assert "campaign:campaign_smoke" in out
        assert "spec:campaign_smoke-kind_uniform-pvcsel_3.6" in out
        assert "campaign wall time" in out
        document = json.loads(chrome_path.read_text())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert all(event["ph"] == "X" for event in events)
        spec_events = [
            event for event in events if event["name"].startswith("spec:")
        ]
        assert len(spec_events) == 4

    def test_trace_runs_a_campaign_directly(self, capsys, tmp_path):
        chrome_path = tmp_path / "trace.json"
        code, out, _ = run_cli(
            capsys,
            "trace",
            "campaign_smoke",
            "--paths",
            "steady",
            "--output",
            str(chrome_path),
        )
        assert code == 0
        assert "spec:campaign_smoke-kind_hotspot-pvcsel_3.6" in out
        assert json.loads(chrome_path.read_text())["traceEvents"]

    def test_trace_rejects_report_without_telemetry(self, capsys, tmp_path):
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps({"campaign": "x", "telemetry": None}))
        code, _, err = run_cli(capsys, "trace", str(bare))
        assert code == 2
        assert "carries no telemetry trace" in err

    def test_trace_unknown_campaign(self, capsys):
        code, _, err = run_cli(capsys, "trace", "bogus")
        assert code == 2
        assert "unknown campaign" in err


class TestLogging:
    def test_global_verbosity_flags_set_the_repro_root(self, capsys):
        import logging

        from repro.log import ROOT_LOGGER

        root = logging.getLogger(ROOT_LOGGER)
        assert run_cli(capsys, "-v", "list")[0] == 0
        assert root.level == logging.INFO
        assert run_cli(capsys, "-vv", "list")[0] == 0
        assert root.level == logging.DEBUG
        assert run_cli(capsys, "-q", "list")[0] == 0
        assert root.level == logging.ERROR
        assert run_cli(capsys, "list")[0] == 0
        assert root.level == logging.WARNING
        # Idempotent: repeated configuration never stacks handlers.
        assert (
            len([h for h in root.handlers if getattr(h, "_repro_cli_handler", False)])
            == 1
        )

    def test_verbosity_level_mapping(self):
        import logging

        from repro.log import verbosity_level

        assert verbosity_level() == logging.WARNING
        assert verbosity_level(verbose=1) == logging.INFO
        assert verbosity_level(verbose=2) == logging.DEBUG
        assert verbosity_level(verbose=3, quiet=True) == logging.ERROR

    def test_store_quarantine_warns(self, tmp_path, caplog):
        """The previously silent corruption quarantine now logs a warning."""
        import logging

        store_dir = tmp_path / "store"
        assert main(
            ["run", "campaign_smoke", "--store", str(store_dir), "--paths", "steady"]
        ) == 0
        store = ArtifactStore(str(store_dir))
        objects = sorted((store_dir / "objects").glob("**/*.json"))
        objects[0].write_text("{ corrupt", encoding="utf-8")
        # The CLI handler disables propagation; caplog listens upstream.
        root = logging.getLogger("repro")
        previous = root.propagate
        root.propagate = True
        try:
            with caplog.at_level(logging.WARNING, logger="repro.store"):
                fresh = ArtifactStore(str(store_dir))
                fresh.entries()
                for key in [e.key for e in store.entries()]:
                    fresh.get_record(key)
        finally:
            root.propagate = previous
        assert any(
            "corrupt store object" in record.message for record in caplog.records
        )
