"""``python -m repro`` CLI: run / list / show / diff end to end."""

import json

import pytest

from repro.campaigns.cli import main
from repro.campaigns import ArtifactStore, get_matrix
from repro.scenarios import ScenarioSpec


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestList:
    def test_lists_campaigns_and_population(self, capsys):
        code, out, _ = run_cli(capsys, "list")
        assert code == 0
        assert "campaign_smoke" in out
        assert "ring_geometry" in out
        assert "scenarios:" in out

    def test_verbose_lists_every_scenario(self, capsys):
        code, out, _ = run_cli(capsys, "list", "-v")
        assert code == 0
        assert "workload_grid-kind_checkerboard-pw_16" in out

    def test_lists_store_entries(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        code, out, _ = run_cli(
            capsys,
            "run",
            "campaign_smoke",
            "--store",
            store_dir,
            "--paths",
            "steady",
        )
        assert code == 0
        code, out, _ = run_cli(capsys, "list", "--store", store_dir)
        assert code == 0
        assert "4 artifacts" in out


class TestShow:
    def test_show_campaign(self, capsys):
        code, out, _ = run_cli(capsys, "show", "campaign_smoke")
        assert code == 0
        assert "axis kind (workload.kind)" in out
        assert "campaign_smoke-kind_hotspot-pvcsel_4.8" in out

    def test_show_scenario_spec_is_valid_json(self, capsys):
        code, out, _ = run_cli(capsys, "show", "scc_case_study")
        assert code == 0
        spec = ScenarioSpec.from_json(out)
        assert spec.name == "scc_case_study"

    def test_show_unknown_name_fails(self, capsys):
        code, _, err = run_cli(capsys, "show", "nonsense")
        assert code == 2
        assert "neither" in err


class TestRunAndDiff:
    def test_run_cold_then_warm(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        report_path = tmp_path / "report.json"
        code, out, _ = run_cli(
            capsys,
            "run",
            "campaign_smoke",
            "--store",
            store_dir,
            "--paths",
            "steady,snr",
            "--workers",
            "2",
            "--output",
            str(report_path),
        )
        assert code == 0
        assert "4 scenarios (0 from store, 4 computed)" in out
        assert "worst_snr_db:" in out
        report = json.loads(report_path.read_text())
        assert report["summary"]["store_misses"] == 4

        code, out, _ = run_cli(
            capsys,
            "run",
            "campaign_smoke",
            "--store",
            store_dir,
            "--paths",
            "steady,snr",
        )
        assert code == 0
        assert "4 from store, 0 computed" in out
        assert "hit rate 100%" in out

        # diff: equal stored artifacts agree; a perturbed copy does not.
        store = ArtifactStore(store_dir)
        entries = store.entries()
        key = entries[0].key
        code, out, _ = run_cli(
            capsys, "diff", key[:12], key[:12], "--store", store_dir
        )
        assert code == 0
        assert "agree" in out

        perturbed = tmp_path / "perturbed.json"
        record = store.get_record(key)
        payload = dict(record["payload"])
        payload["results"] = json.loads(json.dumps(payload["results"]))
        payload["results"]["steady"]["max_oni_temperature_c"] += 1.0
        perturbed.write_text(json.dumps(payload))
        code, out, _ = run_cli(
            capsys, "diff", key[:12], str(perturbed), "--store", store_dir
        )
        assert code == 1
        assert "max_oni_temperature_c" in out

    def test_diff_artifact_against_report_file(self, capsys, tmp_path):
        """The README workflow: diff a stored key against a report JSON."""
        store_dir = str(tmp_path / "store")
        report_path = tmp_path / "report.json"
        code, _, _ = run_cli(
            capsys,
            "run",
            "campaign_smoke",
            "--store",
            store_dir,
            "--paths",
            "steady",
            "--output",
            str(report_path),
        )
        assert code == 0
        store = ArtifactStore(store_dir)
        for entry in store.entries():
            code, out, _ = run_cli(
                capsys,
                "diff",
                entry.key[:12],
                str(report_path),
                "--store",
                store_dir,
            )
            assert code == 0, out
            assert "agree" in out
        # Report vs report compares every scenario's artifact at once.
        code, out, _ = run_cli(
            capsys, "diff", str(report_path), str(report_path)
        )
        assert code == 0
        assert "agree" in out

    def test_run_unknown_campaign(self, capsys):
        code, _, err = run_cli(capsys, "run", "bogus")
        assert code == 2
        assert "unknown campaign" in err

    def test_diff_on_missing_operand(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "diff", "missing_a", "missing_b"
        )
        assert code == 2
        assert "neither" in err

    def test_diff_on_malformed_json_file(self, capsys, tmp_path):
        broken = tmp_path / "broken.json"
        broken.write_text("{ not json")
        code, _, err = run_cli(capsys, "diff", str(broken), str(broken))
        assert code == 2
        assert "cannot read" in err

    def test_run_rejects_empty_paths(self, capsys):
        code, _, err = run_cli(capsys, "run", "campaign_smoke", "--paths", ",")
        assert code == 2
        assert "at least one analysis" in err


class TestSeedRomAndWarmStart:
    def test_seed_then_warm_started_rom_run(self, capsys, tmp_path):
        from repro.thermal import clear_installed_bases

        store_dir = str(tmp_path / "store")
        code, out, _ = run_cli(
            capsys, "seed-rom", "campaign_smoke", "--store", store_dir
        )
        assert code == 0
        assert "4 reduced bases persisted from 4 scenarios" in out
        assert len(ArtifactStore(store_dir).rom_basis_payloads()) == 4

        report_path = tmp_path / "report.json"
        try:
            code, out, _ = run_cli(
                capsys,
                "run",
                "campaign_smoke",
                "--store",
                store_dir,
                "--transient-method",
                "auto",
                "--warm-start",
                "--output",
                str(report_path),
            )
        finally:
            clear_installed_bases()
        assert code == 0
        assert "warm start: 4 reduced bases from the store" in out
        assert "0 LU / 4 ROM transient solves" in out
        assert "4 ROM hits, 0 basis builds, 0 fallbacks" in out
        report = json.loads(report_path.read_text())
        assert report["engine"]["transient_rom_solves"] == 4
        for artifact in report["artifacts"].values():
            assert artifact["results"]["transient"]["solver"]["method"] == "rom"

    def test_warm_start_requires_a_store(self, capsys):
        code, _, err = run_cli(
            capsys, "run", "campaign_smoke", "--warm-start"
        )
        assert code == 2
        assert "--warm-start needs a --store" in err

    def test_seed_rom_requires_a_store(self, capsys):
        # argparse enforces --store on the producer side.
        with pytest.raises(SystemExit):
            main(["seed-rom", "campaign_smoke"])
        _, err = capsys.readouterr()
        assert "--store" in err
