"""``repro serve``: coalescing, store residency, streaming, failure isolation.

The service contract this module pins:

* concurrent requests for the same spec hash cost ONE kernel invocation
  (the ``executor.dispatches`` counter is the witness) and every coalesced
  client receives the byte-identical response document;
* a warm spec is answered from the resident store without dispatching, and
  fast (the end-to-end HTTP round trip, not just the lookup);
* a failing spec produces a structured failure-provenance document — and
  the server loop survives to serve the next request;
* progress streams as line-delimited JSON events over plain HTTP/1.1, on
  TCP and unix sockets alike, and protocol errors map to 4xx/5xx JSON
  bodies instead of dead connections.
"""

import asyncio
import json
import time

import pytest

from repro import telemetry
from repro.campaigns import (
    ArtifactStore,
    AsyncExecutor,
    EvaluationKernel,
    EvaluationService,
    MatrixAxis,
    ScenarioMatrix,
    SerialExecutor,
    ServiceServer,
)
from repro.errors import ConfigurationError, ReproError
from repro.scenarios import ScenarioSpec


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends with the tracer off and empty."""
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()


def spec_dict(name="svc_spec", power=10.0):
    """A cheap steady-only-friendly spec document (the POST body)."""
    return (
        ScenarioSpec(name=name)
        .with_overrides({"workload.total_power_w": power})
        .to_dict()
    )


def make_service(tmp_path=None, **kwargs):
    kwargs.setdefault("paths", ("steady",))
    kwargs.setdefault("concurrency", 2)
    if tmp_path is not None:
        kwargs.setdefault("store", ArtifactStore(tmp_path / "store"))
    return EvaluationService(**kwargs)


class PoisonKernel(EvaluationKernel):
    """Kernel failing every listed spec name (in-process, thread-safe)."""

    def run(self, spec_dict):
        if spec_dict["name"].startswith("poison"):
            raise RuntimeError("poison spec, fails on every attempt")
        return super().run(spec_dict)


class TestEvaluationService:
    def test_compute_then_store_round_trip(self, tmp_path):
        service = make_service(tmp_path)

        async def main():
            first = await service.evaluate(spec_dict())
            second = await service.evaluate(spec_dict())
            return first, second

        first, second = asyncio.run(main())
        assert (first["status"], first["source"]) == ("ok", "computed")
        assert (second["status"], second["source"]) == ("ok", "store")
        # The response document is the store address plus the artifact.
        assert first["key"] == second["key"]
        assert first["artifact"] == second["artifact"]
        assert first["artifact"]["results"]["steady"]
        assert service.counters == {
            "service.requests": 2,
            "service.computed": 1,
            "service.store_served": 1,
        }

    def test_concurrent_same_spec_requests_cost_one_dispatch(self, tmp_path):
        """The tentpole pin: N concurrent clients, one solve.

        ``executor.dispatches`` counts kernel dispatches on the service
        loop; two gathered requests for the same spec hash must coalesce to
        exactly one, and both clients must receive the byte-identical
        document.
        """
        telemetry.enable()
        service = make_service(tmp_path)

        async def main():
            return await asyncio.gather(
                service.evaluate(spec_dict()),
                service.evaluate(spec_dict()),
            )

        first, second = asyncio.run(main())
        dispatches = telemetry.global_registry().counter_value(
            "executor.dispatches"
        )
        assert dispatches == 1
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        assert service.counters["service.coalesced"] == 1
        assert service.counters["service.computed"] == 1

    def test_distinct_specs_do_not_coalesce(self, tmp_path):
        telemetry.enable()
        service = make_service(tmp_path)

        async def main():
            return await asyncio.gather(
                service.evaluate(spec_dict(power=10.0)),
                service.evaluate(spec_dict(power=12.0)),
            )

        first, second = asyncio.run(main())
        assert first["key"] != second["key"]
        assert (
            telemetry.global_registry().counter_value("executor.dispatches")
            == 2
        )
        assert "service.coalesced" not in service.counters

    def test_coalescing_works_without_a_store(self):
        telemetry.enable()
        service = make_service(store=None)

        async def main():
            return await asyncio.gather(
                service.evaluate(spec_dict()),
                service.evaluate(spec_dict()),
            )

        first, second = asyncio.run(main())
        assert first == second
        assert first["source"] == "computed"
        assert (
            telemetry.global_registry().counter_value("executor.dispatches")
            == 1
        )

    def test_failing_spec_returns_structured_provenance(self, tmp_path):
        """A poison spec yields a failure document — and the service keeps
        serving afterwards (the loop survives)."""
        service = make_service(
            tmp_path, kernel=PoisonKernel(("steady",))
        )

        async def main():
            failed = await service.evaluate(spec_dict(name="poison_spec"))
            healthy = await service.evaluate(spec_dict(name="healthy_spec"))
            return failed, healthy

        failed, healthy = asyncio.run(main())
        assert failed["status"] == "failed"
        assert "artifact" not in failed
        failure = failed["failure"]
        assert failure["resolved"] is False
        assert failure["attempts"] == 1
        assert failure["design_hash"]
        assert failure["incidents"][-1]["type"] == "RuntimeError"
        assert "poison" in failure["incidents"][-1]["message"]
        assert healthy["status"] == "ok"
        assert service.counters["service.failures"] == 1

    def test_failure_documents_are_not_stored(self, tmp_path):
        """A failed spec must not poison the store: retrying after the bug
        is fixed recomputes instead of serving the failure."""
        store = ArtifactStore(tmp_path / "store")
        poisoned = make_service(
            store=store, kernel=PoisonKernel(("steady",))
        )
        asyncio.run(poisoned.evaluate(spec_dict(name="poison_spec")))
        assert len(store) == 0
        healthy = make_service(store=store)
        document = asyncio.run(healthy.evaluate(spec_dict(name="poison_spec")))
        assert (document["status"], document["source"]) == ("ok", "computed")

    def test_request_key_matches_store_address(self, tmp_path):
        service = make_service(tmp_path)
        spec = ScenarioSpec.from_dict(spec_dict())
        assert service.request_key(spec) == service.store.key_for(
            spec, service.paths, "lu"
        )

    def test_events_in_order(self, tmp_path):
        service = make_service(tmp_path)
        events = []

        async def sink(event):
            events.append(event["event"])

        async def main():
            await service.evaluate(spec_dict(), on_event=sink)
            await service.evaluate(spec_dict(), on_event=sink)

        asyncio.run(main())
        assert events == ["accepted", "computing", "accepted", "store_hit"]

    def test_health_and_stats_documents(self, tmp_path):
        telemetry.enable()
        service = make_service(tmp_path)
        asyncio.run(service.evaluate(spec_dict()))
        health = service.health_document()
        assert health["status"] == "ok"
        assert health["requests"] == 1
        assert health["inflight"] == 0
        assert health["store_attached"] is True
        assert health["telemetry_enabled"] is True
        stats = service.stats_document()
        assert stats["service"]["counters"]["service.computed"] == 1
        assert stats["store"]["writes"] == 1
        assert stats["store"]["objects"] == 1
        # The kernel's per-request span payload was absorbed into the live
        # snapshot: per-spec spans are visible in /stats.
        assert any(
            name.startswith("spec:") for name in stats.get("spans", {})
        )
        assert stats["metrics"]["counters"]["executor.dispatches"] == 1

    def test_run_campaign_rides_the_coalescing_path(self, tmp_path):
        matrix = ScenarioMatrix(
            name="svc_tiny",
            description="two-point service campaign",
            base=ScenarioSpec(name="svc_base"),
            axes=(
                MatrixAxis(
                    name="p",
                    path="workload.total_power_w",
                    values=(9.0, 11.0),
                ),
            ),
        )
        service = make_service(tmp_path, matrices={"svc_tiny": matrix})
        events = []

        async def sink(event):
            events.append(event)

        cold = asyncio.run(service.run_campaign("svc_tiny", on_event=sink))
        assert (cold["ok"], cold["computed"]) == (2, 2)
        warm = asyncio.run(service.run_campaign("svc_tiny"))
        assert (warm["ok"], warm["store_served"]) == (2, 2)
        kinds = [event["event"] for event in events]
        assert kinds[0] == "campaign"
        assert kinds.count("scenario") == 2
        assert kinds[-1] == "summary"
        with pytest.raises(ConfigurationError, match="unknown campaign"):
            asyncio.run(service.run_campaign("nope"))

    def test_constructor_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError, match="concurrency"):
            EvaluationService(concurrency=0)
        with pytest.raises(ConfigurationError, match="execute_async"):
            EvaluationService(executor=SerialExecutor())
        with pytest.raises(ConfigurationError, match="host/port"):
            ServiceServer(EvaluationService(), host=None, socket_path=None)


# HTTP transport -------------------------------------------------------------


async def start_server(service, **kwargs):
    kwargs.setdefault("host", "127.0.0.1")
    kwargs.setdefault("port", 0)
    server = ServiceServer(service, **kwargs)
    await server.start()
    return server


async def http_request(server, method, path, body=None, socket_path=None):
    """One ``Connection: close`` request; returns (status, [json lines])."""
    if socket_path is not None:
        reader, writer = await asyncio.open_unix_connection(socket_path)
    else:
        host, port = server.address
        reader, writer = await asyncio.open_connection(host, port)
    payload = b"" if body is None else json.dumps(body).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
        f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header, _, content = raw.partition(b"\r\n\r\n")
    status = int(header.split(b" ")[1])
    lines = [
        json.loads(line)
        for line in content.decode("utf-8").splitlines()
        if line.strip()
    ]
    return status, lines


class TestServiceServer:
    def test_evaluate_cold_then_warm_over_http(self, tmp_path):
        service = make_service(tmp_path)

        async def main():
            server = await start_server(service)
            try:
                status, (cold,) = await http_request(
                    server, "POST", "/evaluate", spec_dict()
                )
                assert status == 200
                started = time.perf_counter()
                status, (warm,) = await http_request(
                    server, "POST", "/evaluate", spec_dict()
                )
                elapsed = time.perf_counter() - started
                assert status == 200
                return cold, warm, elapsed
            finally:
                await server.stop()

        cold, warm, elapsed = asyncio.run(main())
        assert (cold["status"], cold["source"]) == ("ok", "computed")
        assert (warm["status"], warm["source"]) == ("ok", "store")
        assert cold["artifact"] == warm["artifact"]
        # The acceptance pin: a warm re-request is store-served fast — the
        # full HTTP round trip, not just the lookup.
        assert elapsed < 0.05, f"warm request took {elapsed * 1e3:.1f} ms"

    def test_streaming_evaluate_emits_ndjson_events(self, tmp_path):
        service = make_service(tmp_path)

        async def main():
            server = await start_server(service)
            try:
                return await http_request(
                    server, "POST", "/evaluate?stream=1", spec_dict()
                )
            finally:
                await server.stop()

        status, events = asyncio.run(main())
        assert status == 200
        assert [event["event"] for event in events] == [
            "accepted",
            "computing",
            "result",
        ]
        assert events[-1]["status"] == "ok"
        assert events[-1]["artifact"]["results"]["steady"]

    def test_campaign_endpoint_streams_summary(self, tmp_path):
        matrix = ScenarioMatrix(
            name="svc_tiny",
            description="two-point service campaign",
            base=ScenarioSpec(name="svc_base"),
            axes=(
                MatrixAxis(
                    name="p",
                    path="workload.total_power_w",
                    values=(9.0, 11.0),
                ),
            ),
        )
        service = make_service(tmp_path, matrices={"svc_tiny": matrix})

        async def main():
            server = await start_server(service)
            try:
                good = await http_request(
                    server, "POST", "/campaign/svc_tiny", {}
                )
                bad = await http_request(server, "POST", "/campaign/nope", {})
                return good, bad
            finally:
                await server.stop()

        (status, events), (bad_status, bad_events) = asyncio.run(main())
        assert status == 200
        assert events[0]["event"] == "campaign"
        assert events[-1]["event"] == "summary"
        assert events[-1]["ok"] == 2
        # Unknown campaigns stream a structured error event (the ndjson
        # response has already started when the name resolves).
        assert bad_status == 200
        assert bad_events[-1]["event"] == "error"
        assert "unknown campaign" in bad_events[-1]["error"]

    def test_health_stats_scenarios_endpoints(self, tmp_path):
        telemetry.enable()
        service = make_service(tmp_path)

        async def main():
            server = await start_server(service)
            try:
                await http_request(server, "POST", "/evaluate", spec_dict())
                health = await http_request(server, "GET", "/health")
                stats = await http_request(server, "GET", "/stats")
                names = await http_request(server, "GET", "/scenarios")
                return health, stats, names
            finally:
                await server.stop()

        health, stats, names = asyncio.run(main())
        assert health[0] == 200 and health[1][0]["status"] == "ok"
        assert health[1][0]["requests"] == 1
        assert stats[0] == 200
        assert stats[1][0]["store"]["hit_rate"] == 0.0
        assert stats[1][0]["service"]["counters"]["service.computed"] == 1
        assert names[0] == 200
        assert "campaign_smoke" in names[1][0]["campaigns"]
        assert names[1][0]["scenarios"]

    def test_protocol_and_validation_errors_keep_serving(self, tmp_path):
        """Bad bodies and bad routes answer as JSON errors; the server
        stays healthy for the next request."""
        service = make_service(tmp_path)

        async def main():
            server = await start_server(service)
            host, port = server.address
            try:
                bad_route = await http_request(server, "GET", "/nope")
                bad_method = await http_request(server, "PUT", "/health")
                bad_spec = await http_request(
                    server, "POST", "/evaluate", {"name": ""}
                )
                # Raw non-JSON body.
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    b"POST /evaluate HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 9\r\nConnection: close\r\n\r\nnot json!"
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
                not_json = int(raw.split(b" ")[1])
                health = await http_request(server, "GET", "/health")
                return bad_route, bad_method, bad_spec, not_json, health
            finally:
                await server.stop()

        bad_route, bad_method, bad_spec, not_json, health = asyncio.run(main())
        assert bad_route[0] == 404
        assert bad_method[0] == 404
        assert bad_spec[0] == 400
        assert "scenario.name" in bad_spec[1][0]["error"]
        assert not_json == 400
        assert health[0] == 200 and health[1][0]["status"] == "ok"

    def test_keep_alive_serves_sequential_requests(self, tmp_path):
        service = make_service(tmp_path)

        async def main():
            server = await start_server(service)
            host, port = server.address
            try:
                reader, writer = await asyncio.open_connection(host, port)
                statuses = []
                for _ in range(2):
                    writer.write(b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n")
                    await writer.drain()
                    status_line = await reader.readline()
                    statuses.append(int(status_line.split(b" ")[1]))
                    length = None
                    while True:
                        line = await reader.readline()
                        if line in (b"\r\n", b"\n"):
                            break
                        if line.lower().startswith(b"content-length:"):
                            length = int(line.split(b":")[1])
                    await reader.readexactly(length)
                writer.close()
                await writer.wait_closed()
                return statuses
            finally:
                await server.stop()

        assert asyncio.run(main()) == [200, 200]

    def test_unix_socket_transport(self, tmp_path):
        service = make_service(tmp_path)
        socket_path = tmp_path / "serve.sock"

        async def main():
            server = await start_server(
                service, host=None, socket_path=socket_path
            )
            try:
                assert server.endpoints == [f"unix:{socket_path}"]
                return await http_request(
                    server,
                    "POST",
                    "/evaluate",
                    spec_dict(),
                    socket_path=str(socket_path),
                )
            finally:
                await server.stop()

        status, (document,) = asyncio.run(main())
        assert status == 200
        assert document["status"] == "ok"
        assert not socket_path.exists()  # stop() removes the socket file

    def test_concurrent_http_clients_coalesce_to_one_dispatch(self, tmp_path):
        """The tentpole pin, end to end over the wire: two concurrent HTTP
        clients posting the same spec cost one kernel dispatch and read
        byte-identical bodies."""
        telemetry.enable()
        service = make_service(tmp_path)

        async def main():
            server = await start_server(service)
            try:
                return await asyncio.gather(
                    http_request(server, "POST", "/evaluate", spec_dict()),
                    http_request(server, "POST", "/evaluate", spec_dict()),
                )
            finally:
                await server.stop()

        (status_a, lines_a), (status_b, lines_b) = asyncio.run(main())
        assert status_a == status_b == 200
        assert json.dumps(lines_a, sort_keys=True) == json.dumps(
            lines_b, sort_keys=True
        )
        # Whether the slower client coalesced onto the in-flight solve or
        # (having arrived after it finished) was served from the store,
        # exactly one kernel dispatch ever happens.
        dispatches = telemetry.global_registry().counter_value(
            "executor.dispatches"
        )
        assert dispatches == 1
        assert service.counters["service.requests"] == 2

    def test_failing_spec_over_http_does_not_kill_the_loop(self, tmp_path):
        service = make_service(
            tmp_path, kernel=PoisonKernel(("steady",))
        )

        async def main():
            server = await start_server(service)
            try:
                failed = await http_request(
                    server, "POST", "/evaluate", spec_dict(name="poison_http")
                )
                healthy = await http_request(
                    server, "POST", "/evaluate", spec_dict(name="healthy_http")
                )
                return failed, healthy
            finally:
                await server.stop()

        (failed_status, (failed,)), (ok_status, (ok,)) = asyncio.run(main())
        assert failed_status == 200
        assert failed["status"] == "failed"
        assert failed["failure"]["incidents"][-1]["type"] == "RuntimeError"
        assert ok_status == 200 and ok["status"] == "ok"
