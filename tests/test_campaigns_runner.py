"""CampaignRunner: store incrementality, summaries, determinism parity."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.campaigns import (
    ArtifactStore,
    CampaignPoint,
    CampaignRunner,
    MatrixAxis,
    ScenarioMatrix,
    get_matrix,
    run_campaign,
    scenario_metrics,
)
from repro.scenarios import ScenarioSpec

#: Cheapest end-to-end matrix: 2 tiny specs, every analysis path.
TINY = ScenarioMatrix(
    name="tiny",
    description="Two-point campaign for runner tests",
    base=ScenarioSpec.from_dict(
        {
            "name": "tiny_base",
            "chip": {
                "die_width_mm": 14.0,
                "die_height_mm": 11.0,
                "tile_columns": 3,
                "tile_rows": 2,
                "include_infrastructure": False,
            },
            "mesh": {
                "oni_cell_size_um": 500.0,
                "die_cell_size_um": 2500.0,
                "zoom_cell_size_um": 40.0,
            },
            "network": {"ring_length_mm": 9.0, "oni_count": 4},
            "workload": {"kind": "uniform", "total_power_w": 8.0},
            "trace": {
                "kind": "two_phase",
                "phases": 2,
                "phase_duration_s": 2.0,
            },
        }
    ),
    axes=(
        MatrixAxis(
            name="pvcsel", path="power.vcsel_power_mw", values=(3.6, 4.8)
        ),
    ),
)


@pytest.fixture(scope="module")
def cold_report():
    """One shared serial run of the tiny campaign (no store)."""
    return CampaignRunner(TINY).run()


class TestCampaignRun:
    def test_report_structure(self, cold_report):
        report = cold_report
        assert report.campaign == "tiny"
        names = [entry["name"] for entry in report.scenarios]
        assert names == ["tiny-pvcsel_3.6", "tiny-pvcsel_4.8"]
        assert sorted(report.artifacts) == sorted(names)
        for entry in report.scenarios:
            assert entry["from_store"] is False
            artifact = report.artifact(entry["name"])
            assert artifact.spec_hash == entry["spec_hash"]
            assert sorted(artifact.results) == [
                "snr",
                "steady",
                "sweep",
                "transient",
            ]
        # Engine counters were merged across the per-spec runners.
        assert report.engine["thermal_solves"] > 0
        assert report.store is None

    def test_summary_tables(self, cold_report):
        summary = cold_report.summary
        assert summary["scenario_count"] == 2
        assert summary["store_misses"] == 2
        per_scenario = {
            entry["name"]: scenario_metrics(
                cold_report.artifacts[entry["name"]]
            )
            for entry in cold_report.scenarios
        }
        worst = min(
            per_scenario.items(), key=lambda item: item[1]["worst_snr_db"]
        )
        assert summary["worst_snr_db"]["scenario"] == worst[0]
        assert summary["worst_snr_db"]["value"] == worst[1]["worst_snr_db"]
        # Per-axis rows: one per pvcsel value, each covering one scenario.
        rows = summary["by_axis"]["pvcsel"]
        assert sorted(rows) == ["3.6", "4.8"]
        for label, row in rows.items():
            name = f"tiny-pvcsel_{label}"
            assert row["scenarios"] == 1
            assert row["worst_snr_db"] == per_scenario[name]["worst_snr_db"]
            assert row["peak_temperature_c"] == (
                per_scenario[name]["peak_temperature_c"]
            )

    def test_scenario_metrics_spans_paths(self, cold_report):
        artifact = cold_report.artifacts["tiny-pvcsel_3.6"]
        metrics = scenario_metrics(artifact)
        results = artifact["results"]
        assert metrics["peak_temperature_c"] >= (
            results["steady"]["max_oni_temperature_c"]
        )
        assert metrics["worst_snr_db"] <= (
            results["snr"]["nominal"]["worst_case_snr_db"]
        )
        assert metrics["settling_s"] == (
            results["transient"]["settling"]["max_settling_s"]
        )

    def test_warm_rerun_is_served_from_store(self, tmp_path, cold_report):
        store = ArtifactStore(tmp_path / "store")
        cold = CampaignRunner(TINY, store=store).run()
        assert cold.summary["store_misses"] == 2
        warm = CampaignRunner(
            TINY, store=ArtifactStore(tmp_path / "store")
        ).run()
        assert warm.summary["store_hits"] == 2
        assert warm.summary["store_misses"] == 0
        assert warm.store["hits"] == 2
        # Hits change only the provenance flags, never the numbers: the
        # artifacts match the storeless reference byte for byte.
        assert warm.artifacts == cold_report.artifacts

    def test_partial_store_only_computes_new_specs(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = CampaignRunner(
            [TINY.points()[0]], store=store, name="partial"
        ).run()
        assert first.summary["store_misses"] == 1
        both = CampaignRunner(TINY, store=store).run()
        flags = {
            entry["name"]: entry["from_store"] for entry in both.scenarios
        }
        assert flags == {
            "tiny-pvcsel_3.6": True,
            "tiny-pvcsel_4.8": False,
        }

    def test_paths_subset(self):
        report = run_campaign(
            [TINY.points()[0]], paths=("steady",), name="steady_only"
        )
        artifact = report.artifact("tiny-pvcsel_3.6")
        assert sorted(artifact.results) == ["steady"]
        assert report.summary["worst_snr_db"] is None

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="need a name"):
            CampaignRunner([TINY.points()[0]])
        with pytest.raises(ConfigurationError, match="unknown analysis paths"):
            CampaignRunner(TINY, paths=("bogus",))
        with pytest.raises(ConfigurationError, match="at least one analysis"):
            CampaignRunner(TINY, paths=())
        with pytest.raises(ConfigurationError, match="workers"):
            CampaignRunner(TINY, workers=0)
        with pytest.raises(ConfigurationError, match="no scenarios"):
            CampaignRunner([], name="empty")
        point = TINY.points()[0]
        with pytest.raises(ConfigurationError, match="duplicate"):
            CampaignRunner([point, point], name="twice")

    def test_failing_spec_does_not_discard_completed_work(self, tmp_path):
        """Artifacts persist as they complete, so a retry is incremental."""
        good = TINY.points()[0]
        # Schema-valid but unbuildable: the ring cannot fit the die, so the
        # runner raises at execution time, after `good` already finished.
        bad = CampaignPoint(
            spec=good.spec.with_overrides(
                {"name": "bad_ring", "network.ring_length_mm": 200.0}
            )
        )
        store = ArtifactStore(tmp_path / "store")
        with pytest.raises(ConfigurationError, match="does not fit"):
            CampaignRunner(
                [good, bad], store=store, paths=("steady",), name="mixed"
            ).run()
        # The completed spec is already on disk: the retry only recomputes
        # the genuinely new (here: still-broken) one.
        assert store.load(good.spec, ("steady",)) is not None

    def test_bare_spec_list(self):
        spec = TINY.points()[0].spec
        report = run_campaign([spec], paths=("steady",), name="bare")
        assert report.scenarios[0]["axes"] == {}
        assert report.scenarios[0]["name"] == spec.name


class TestDeterminismParity:
    def test_parallel_equals_serial_byte_for_byte(self, cold_report):
        """workers=4 must reproduce the serial campaign JSON exactly.

        This is the acceptance pin of the campaign subsystem: fanning specs
        out over a process pool only changes wall-clock time, never a byte
        of any artifact or of the merged report.
        """
        parallel = CampaignRunner(TINY, workers=4).run()
        assert parallel.to_json() == cold_report.to_json()
        for name, artifact in cold_report.artifacts.items():
            assert json.dumps(parallel.artifacts[name], sort_keys=True) == (
                json.dumps(artifact, sort_keys=True)
            )

    def test_parallel_store_population_matches_serial(self, tmp_path, cold_report):
        store = ArtifactStore(tmp_path / "par_store")
        CampaignRunner(TINY, store=store, workers=4).run()
        warm = CampaignRunner(
            TINY, store=ArtifactStore(tmp_path / "par_store")
        ).run()
        assert warm.summary["store_hits"] == 2
        assert warm.artifacts == cold_report.artifacts
