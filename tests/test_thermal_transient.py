"""Tests for the transient thermal engine (schedules, θ-method, probes)."""

import math

import numpy as np
import pytest

from repro.errors import MeshError, SolverError
from repro.geometry import Box, Layer, LayerStack, Rect
from repro.materials import SILICON
from repro.thermal import (
    BoundaryConditions,
    FaceCondition,
    HeatSource,
    Mesh3D,
    MeshBuilder,
    ProbeSeries,
    ScheduleSegment,
    SourceSchedule,
    SteadyStateSolver,
    ThermalMap,
    TransientSolver,
)


def slab_problem(side_mm=5.0, thickness_um=400.0, cells_um=1000.0):
    footprint = Rect.from_size_mm(0.0, 0.0, side_mm, side_mm)
    stack = LayerStack(footprint)
    stack.add_layer(Layer(name="bulk", thickness=thickness_um * 1e-6, material=SILICON))
    mesh = MeshBuilder(stack, base_cell_size_um=cells_um, vertical_target_um=100.0).build()
    boundaries = BoundaryConditions()
    boundaries.set_face("z_max", FaceCondition.convective(25.0, 1500.0))
    source = HeatSource.from_rect("sheet", footprint, 0.0, 10e-6, 5.0)
    return mesh, boundaries, source, footprint


def single_cell_problem(ambient_c=25.0, h_w_m2k=2000.0):
    """One-cell mesh: an exact lumped RC circuit for analytic comparison."""
    side = 1.0e-3
    thickness = 100.0e-6
    ticks = np.array([0.0, side])
    z_ticks = np.array([0.0, thickness])
    k = np.full((1, 1, 1), SILICON.lateral_conductivity)
    c = np.full((1, 1, 1), SILICON.volumetric_heat_capacity_j_m3k())
    mesh = Mesh3D(ticks, ticks, z_ticks, k, k.copy(), c)
    boundaries = BoundaryConditions()
    boundaries.set_face("z_max", FaceCondition.convective(ambient_c, h_w_m2k))
    source = HeatSource(
        "cell", Box(0.0, 0.0, 0.0, side, side, thickness), 0.05
    )
    area = side * side
    half_conductance = 2.0 * SILICON.vertical_conductivity * area / thickness
    convective = h_w_m2k * area
    conductance = 1.0 / (1.0 / half_conductance + 1.0 / convective)
    capacitance = area * thickness * SILICON.volumetric_heat_capacity_j_m3k()
    return mesh, boundaries, source, conductance, capacitance


class TestScheduleValidation:
    def test_segment_rejects_nonpositive_and_nan_durations(self):
        for duration in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(SolverError):
                ScheduleSegment(duration_s=duration, sources=())

    def test_segment_at_walks_boundaries(self):
        source = HeatSource("s", Box(0, 0, 0, 1e-3, 1e-3, 1e-5), 1.0)
        schedule = SourceSchedule()
        schedule.add_segment(1.0, [source], label="first")
        schedule.add_segment(2.0, [source], label="second")
        assert schedule.total_duration_s == pytest.approx(3.0)
        assert schedule.segment_at(0.0).label == "first"
        assert schedule.segment_at(0.999).label == "first"
        assert schedule.segment_at(1.0).label == "second"
        assert schedule.segment_at(3.0).label == "second"
        with pytest.raises(SolverError):
            schedule.segment_at(3.5)
        with pytest.raises(SolverError):
            schedule.segment_at(-0.1)
        with pytest.raises(SolverError, match="finite"):
            schedule.segment_at(float("nan"))

    def test_empty_schedule_rejected(self):
        mesh, boundaries, _, _ = slab_problem()
        solver = TransientSolver(mesh, boundaries)
        with pytest.raises(SolverError, match="no segments"):
            solver.solve(SourceSchedule(), dt_s=0.1)
        with pytest.raises(SolverError):
            SourceSchedule().segment_at(0.0)


class TestSolverValidation:
    def test_theta_range(self):
        mesh, boundaries, _, _ = slab_problem()
        for theta in (0.0, 0.49, 1.01):
            with pytest.raises(SolverError, match="theta"):
                TransientSolver(mesh, boundaries, theta=theta)

    def test_missing_heat_capacity_rejected(self):
        mesh, boundaries, _, _ = slab_problem()
        bare = Mesh3D(
            mesh.x_ticks, mesh.y_ticks, mesh.z_ticks, mesh.k_lateral, mesh.k_vertical
        )
        assert not bare.has_heat_capacity
        with pytest.raises(MeshError, match="heat-capacity"):
            TransientSolver(bare, boundaries)
        # An explicit scalar override makes the bare mesh usable.
        solver = TransientSolver(bare, boundaries, volumetric_heat_capacity=1.6e6)
        assert solver.mesh is bare

    def test_mesh_heat_capacity_validation(self):
        mesh, _, _, _ = slab_problem()
        with pytest.raises(MeshError):
            Mesh3D(
                mesh.x_ticks,
                mesh.y_ticks,
                mesh.z_ticks,
                mesh.k_lateral,
                mesh.k_vertical,
                np.zeros(mesh.shape),
            )
        with pytest.raises(MeshError):
            Mesh3D(
                mesh.x_ticks,
                mesh.y_ticks,
                mesh.z_ticks,
                mesh.k_lateral,
                mesh.k_vertical,
                np.ones((1, 1, 1)),
            )

    def test_builder_fills_capacitance_from_materials(self):
        mesh, _, _, _ = slab_problem()
        assert mesh.has_heat_capacity
        expected = SILICON.volumetric_heat_capacity_j_m3k()
        assert np.allclose(mesh.c_volumetric, expected)
        capacitance = mesh.capacitance_vector()
        assert capacitance.shape == (mesh.n_cells,)
        total_volume = mesh.cell_volumes().sum()
        assert capacitance.sum() == pytest.approx(expected * total_volume)

    def test_invalid_dt_rejected(self):
        mesh, boundaries, source, _ = slab_problem()
        solver = TransientSolver(mesh, boundaries)
        schedule = SourceSchedule([ScheduleSegment(1.0, (source,))])
        for dt in (0.0, -1.0, float("nan")):
            with pytest.raises(SolverError, match="dt_s"):
                solver.solve(schedule, dt_s=dt)

    def test_snapshot_times_outside_schedule_rejected(self):
        mesh, boundaries, source, _ = slab_problem()
        solver = TransientSolver(mesh, boundaries)
        schedule = SourceSchedule([ScheduleSegment(1.0, (source,))])
        with pytest.raises(SolverError, match="snapshot"):
            solver.solve(schedule, dt_s=0.1, snapshot_times_s=[2.0])

    def test_initial_field_shape_checked(self):
        mesh, boundaries, source, _ = slab_problem()
        solver = TransientSolver(mesh, boundaries)
        schedule = SourceSchedule([ScheduleSegment(1.0, (source,))])
        with pytest.raises(SolverError, match="initial temperature"):
            solver.solve(
                schedule, dt_s=0.5, initial_temperature_c=np.zeros((2, 2, 2))
            )


class TestAnalyticLumpedRc:
    def test_backward_euler_matches_exponential(self):
        mesh, boundaries, source, conductance, capacitance = single_cell_problem()
        tau = capacitance / conductance
        solver = TransientSolver(mesh, boundaries)
        schedule = SourceSchedule([ScheduleSegment(3.0 * tau, (source,))])
        probe = {"cell": mesh.bounding_box()}
        result = solver.solve(schedule, dt_s=tau / 200.0, probes=probe)
        series = result.probe("cell")
        rise = source.power_w / conductance
        expected = 25.0 + rise * (1.0 - np.exp(-series.times_s / tau))
        error = np.abs(series.temperatures_c - expected).max()
        assert error < 0.01 * rise

    def test_crank_nicolson_is_more_accurate_than_backward_euler(self):
        mesh, boundaries, source, conductance, capacitance = single_cell_problem()
        tau = capacitance / conductance
        schedule = SourceSchedule([ScheduleSegment(2.0 * tau, (source,))])
        probe = {"cell": mesh.bounding_box()}
        rise = source.power_w / conductance

        def max_error(theta):
            solver = TransientSolver(mesh, boundaries, theta=theta)
            series = solver.solve(schedule, dt_s=tau / 10.0, probes=probe).probe("cell")
            expected = 25.0 + rise * (1.0 - np.exp(-series.times_s / tau))
            return np.abs(series.temperatures_c - expected).max()

        assert max_error(0.5) < 0.2 * max_error(1.0)


class TestSteadyStateConvergence:
    def test_long_horizon_converges_to_steady_solver(self):
        """Acceptance: the transient field settles onto the steady solution."""
        mesh, boundaries, source, _ = slab_problem()
        steady = SteadyStateSolver(mesh, boundaries).solve([source])
        solver = TransientSolver(mesh, boundaries)
        schedule = SourceSchedule([ScheduleSegment(100.0, (source,))])
        result = solver.solve(schedule, dt_s=0.5)
        difference = np.abs(
            result.final_map.temperatures_c - steady.temperatures_c
        ).max()
        assert difference < 1.0e-6

    def test_steady_initial_condition_stays_put(self):
        mesh, boundaries, source, _ = slab_problem()
        steady = SteadyStateSolver(mesh, boundaries).solve([source])
        solver = TransientSolver(mesh, boundaries)
        schedule = SourceSchedule([ScheduleSegment(5.0, (source,))])
        result = solver.solve(schedule, dt_s=0.5, initial_temperature_c=steady)
        drift = np.abs(
            result.final_map.temperatures_c - steady.temperatures_c
        ).max()
        assert drift < 1.0e-8


class TestFactorizationReuse:
    def test_one_factorization_per_step_size(self):
        mesh, boundaries, source, _ = slab_problem()
        solver = TransientSolver(mesh, boundaries)
        schedule = SourceSchedule(
            [
                ScheduleSegment(1.0, (source,), label="a"),
                ScheduleSegment(1.0, (source.with_power(2.0),), label="b"),
            ]
        )
        first = solver.solve(schedule, dt_s=0.25)
        assert first.diagnostics.factorizations_computed == 1
        assert first.diagnostics.distinct_steps == 1
        # A second trace on the same mesh reuses the cached factorisation.
        second = solver.solve(schedule, dt_s=0.25)
        assert second.diagnostics.factorizations_computed == 0
        assert solver.cached_factorizations == 1
        np.testing.assert_allclose(
            first.final_map.temperatures_c, second.final_map.temperatures_c
        )

    def test_stepper_cache_is_bounded(self):
        # Each cached stepper holds a full LU; sweeps varying dt must not
        # accumulate them without limit.
        mesh, boundaries, source, _ = slab_problem()
        solver = TransientSolver(mesh, boundaries)
        capacity = solver._steppers.max_entries
        for index in range(capacity + 3):
            schedule = SourceSchedule([ScheduleSegment(1.0, (source,))])
            result = solver.solve(schedule, dt_s=1.0 / (index + 1))
            assert result.diagnostics.factorizations_computed == 1
        assert solver.cached_factorizations == capacity

    def test_unequal_segments_get_aligned_steps(self):
        mesh, boundaries, source, _ = slab_problem()
        solver = TransientSolver(mesh, boundaries)
        schedule = SourceSchedule(
            [
                ScheduleSegment(1.0, (source,)),
                ScheduleSegment(0.7, (source,)),
            ]
        )
        result = solver.solve(schedule, dt_s=0.4)
        # 1.0 s in 3 steps, 0.7 s in 2 steps: boundaries are honoured exactly.
        assert result.diagnostics.steps == 5
        assert result.diagnostics.distinct_steps == 2
        assert result.segment_boundaries_s == pytest.approx((1.0, 1.7))
        assert np.any(np.isclose(result.times_s, 1.0))
        assert result.times_s[-1] == pytest.approx(1.7)


class TestProbesAndSnapshots:
    def test_probe_series_and_multi_box_mean(self):
        mesh, boundaries, source, footprint = slab_problem()
        solver = TransientSolver(mesh, boundaries)
        schedule = SourceSchedule([ScheduleSegment(20.0, (source,))])
        whole = mesh.bounding_box()
        half_a = Box(whole.x_min, whole.y_min, whole.z_min, 0.5 * whole.x_max, whole.y_max, whole.z_max)
        half_b = Box(0.5 * whole.x_max, whole.y_min, whole.z_min, whole.x_max, whole.y_max, whole.z_max)
        result = solver.solve(
            schedule,
            dt_s=0.5,
            probes={"whole": whole, "halves": [half_a, half_b]},
        )
        whole_series = result.probe("whole")
        halves_series = result.probe("halves")
        assert whole_series.times_s.shape == whole_series.temperatures_c.shape
        # Symmetric problem: the mean of the two halves is the whole average.
        np.testing.assert_allclose(
            halves_series.temperatures_c, whole_series.temperatures_c, rtol=1e-9
        )
        assert whole_series.temperatures_c[0] == pytest.approx(25.0)
        assert whole_series.max_c == whole_series.final_c
        with pytest.raises(SolverError, match="no probe"):
            result.probe("missing")

    def test_probe_outside_mesh_rejected(self):
        mesh, boundaries, source, _ = slab_problem()
        solver = TransientSolver(mesh, boundaries)
        schedule = SourceSchedule([ScheduleSegment(1.0, (source,))])
        outside = Box(1.0, 1.0, 1.0, 2.0, 2.0, 2.0)
        with pytest.raises(SolverError, match="does not overlap"):
            solver.solve(schedule, dt_s=0.5, probes={"outside": outside})

    def test_time_above_and_settling(self):
        times = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        series = ProbeSeries(
            name="p",
            times_s=times,
            temperatures_c=np.array([25.0, 40.0, 52.0, 58.0, 59.9]),
        )
        assert series.time_above_c(50.0) == pytest.approx(3.0)
        assert series.time_above_c(100.0) == 0.0
        # Settles within 5 degC of the final value after the 3 s sample.
        assert series.settling_time_s(5.0) == pytest.approx(3.0)
        # Never settles within 0.5 degC (the 3 s sample is still outside).
        never = ProbeSeries(
            name="p",
            times_s=times,
            temperatures_c=np.array([25.0, 40.0, 52.0, 58.0, 70.0]),
        )
        assert never.settling_time_s(0.5, reference_c=58.0) is None
        flat = ProbeSeries(
            name="p", times_s=times, temperatures_c=np.full(5, 30.0)
        )
        assert flat.settling_time_s(1.0) == 0.0
        with pytest.raises(SolverError):
            series.settling_time_s(0.0)

    def test_settling_not_confirmed_for_still_moving_trace(self):
        # Against the default (final-value) reference a steadily rising
        # trace must report None, not a time just before the end.
        times = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        rising = ProbeSeries(
            name="p",
            times_s=times,
            temperatures_c=np.array([25.0, 26.0, 27.0, 28.0, 29.0]),
        )
        assert rising.settling_time_s(0.5) is None

    def test_snapshots_snap_to_step_ends(self):
        mesh, boundaries, source, _ = slab_problem()
        solver = TransientSolver(mesh, boundaries)
        schedule = SourceSchedule([ScheduleSegment(2.0, (source,))])
        result = solver.solve(
            schedule, dt_s=0.5, snapshot_times_s=[0.0, 0.6, 2.0]
        )
        assert [snap.requested_time_s for snap in result.snapshots] == [0.0, 0.6, 2.0]
        assert [snap.time_s for snap in result.snapshots] == pytest.approx(
            [0.0, 1.0, 2.0]
        )
        for snap in result.snapshots:
            assert isinstance(snap.thermal_map, ThermalMap)
        nearest = result.snapshot_nearest(0.7)
        assert nearest.time_s == pytest.approx(1.0)
        # The final snapshot equals the final map.
        np.testing.assert_allclose(
            result.snapshots[-1].thermal_map.temperatures_c,
            result.final_map.temperatures_c,
        )

    def test_snapshot_marginally_past_end_is_still_recorded(self):
        # A target inside the validation tolerance but past the last step
        # time must yield a snapshot of the final field, not silently vanish.
        mesh, boundaries, source, _ = slab_problem()
        solver = TransientSolver(mesh, boundaries)
        schedule = SourceSchedule([ScheduleSegment(2.0, (source,))])
        result = solver.solve(
            schedule, dt_s=0.5, snapshot_times_s=[2.0 * (1.0 + 1.0e-10)]
        )
        assert len(result.snapshots) == 1
        np.testing.assert_allclose(
            result.snapshots[0].thermal_map.temperatures_c,
            result.final_map.temperatures_c,
        )

    def test_probe_functionals_compiled_once_per_spec(self):
        mesh, boundaries, source, _ = slab_problem()
        solver = TransientSolver(mesh, boundaries)
        schedule = SourceSchedule([ScheduleSegment(1.0, (source,))])
        from repro.thermal.transient import _probe_cache_key

        box = mesh.bounding_box()
        solver.solve(schedule, dt_s=0.5, probes={"whole": box})
        assert len(solver._probe_functionals) == 1
        cached = solver._probe_functionals.get(("whole", _probe_cache_key(box)))
        assert cached is not None
        # A second solve with an equal (but distinct) box reuses the vector.
        other = mesh.bounding_box()
        solver.solve(schedule, dt_s=0.5, probes={"whole": other})
        assert len(solver._probe_functionals) == 1
        assert (
            solver._probe_functionals.get(("whole", _probe_cache_key(other)))
            is cached
        )

    def test_diagnostics_summary_names_method(self):
        mesh, boundaries, source, _ = slab_problem()
        schedule = SourceSchedule([ScheduleSegment(1.0, (source,))])
        be = TransientSolver(mesh, boundaries).solve(schedule, dt_s=0.5)
        cn = TransientSolver(mesh, boundaries, theta=0.5).solve(schedule, dt_s=0.5)
        assert be.diagnostics.method == "backward_euler"
        assert cn.diagnostics.method == "crank_nicolson"
        assert "backward_euler" in be.diagnostics.summary()
