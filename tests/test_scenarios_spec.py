"""Spec layer of the scenario subsystem: validation, round trips, hashing."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.scenarios import (
    SCHEMA_VERSION,
    ChipSpec,
    NetworkSpec,
    ScenarioSpec,
    TraceSpec,
    WorkloadSpec,
    builtin_scenarios,
    default_registry,
    scenario_json_schema,
)
from repro.scenarios.registry import ScenarioRegistry


class TestRoundTrip:
    def test_to_dict_from_dict_round_trip(self):
        for spec in builtin_scenarios():
            rebuilt = ScenarioSpec.from_dict(spec.to_dict())
            assert rebuilt == spec
            assert rebuilt.content_hash() == spec.content_hash()

    def test_json_round_trip_through_text(self):
        spec = default_registry().get("scc_diagonal_32mm")
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt == spec

    def test_round_trip_survives_json_reserialisation(self):
        spec = default_registry().get("small_die_hotspot")
        # A dict that went through text has lists instead of tuples etc.
        data = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(data).content_hash() == spec.content_hash()

    def test_trace_may_be_null(self):
        data = ScenarioSpec(name="no_trace", trace=None).to_dict()
        assert data["trace"] is None
        rebuilt = ScenarioSpec.from_dict(data)
        assert rebuilt.trace is None

    def test_defaults_fill_missing_sections(self):
        spec = ScenarioSpec.from_dict({"name": "bare"})
        assert spec.chip == ChipSpec()
        assert spec.network == NetworkSpec()
        assert spec.sweep_scales == (0.75, 1.0, 1.25)


class TestValidation:
    def test_missing_name_rejected(self):
        with pytest.raises(ConfigurationError, match="name"):
            ScenarioSpec.from_dict({})

    def test_unknown_top_level_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fields"):
            ScenarioSpec.from_dict({"name": "x", "nonsense": 1})

    def test_unknown_section_field_named_in_path(self):
        with pytest.raises(ConfigurationError, match="scenario.network"):
            ScenarioSpec.from_dict({"name": "x", "network": {"rings": 3}})

    def test_wrong_type_rejected_with_path(self):
        with pytest.raises(ConfigurationError, match="scenario.chip.die_width_mm"):
            ScenarioSpec.from_dict(
                {"name": "x", "chip": {"die_width_mm": "wide"}}
            )

    def test_boolean_is_not_a_number(self):
        with pytest.raises(ConfigurationError, match="boolean"):
            ScenarioSpec.from_dict(
                {"name": "x", "chip": {"die_width_mm": True}}
            )

    def test_enum_violation_rejected(self):
        with pytest.raises(ConfigurationError, match="workload.kind"):
            ScenarioSpec.from_dict(
                {"name": "x", "workload": {"kind": "lava_lamp"}}
            )

    def test_range_violation_rejected(self):
        with pytest.raises(ConfigurationError, match="oni_count"):
            ScenarioSpec.from_dict(
                {"name": "x", "network": {"oni_count": 1}}
            )

    def test_package_overrides_pass_through_numbers(self):
        spec = ScenarioSpec.from_dict(
            {
                "name": "x",
                "chip": {"package_overrides": {"lid_thickness_um": 1500.0}},
            }
        )
        assert spec.chip.package_overrides["lid_thickness_um"] == 1500.0

    def test_package_overrides_must_not_shadow_chip_fields(self):
        with pytest.raises(ConfigurationError, match="shadow"):
            ScenarioSpec.from_dict(
                {
                    "name": "x",
                    "chip": {
                        "die_width_mm": 14.0,
                        "package_overrides": {"die_width_mm": 26.5},
                    },
                }
            )

    def test_value_types_accept_bool_only_when_listed(self):
        from repro.scenarios.spec import _validate_value

        entry = {"type": "object", "valueTypes": (str, bool)}
        _validate_value({"flag": True, "label": "x"}, entry, "p")  # no raise
        with pytest.raises(ConfigurationError, match="unsupported value"):
            _validate_value({"count": 3}, entry, "p")

    def test_trace_initial_rejects_booleans(self):
        with pytest.raises(ConfigurationError, match="boolean"):
            ScenarioSpec.from_dict(
                {"name": "x", "trace": {"initial": True}}
            )

    def test_workload_params_reject_booleans(self):
        # bool is not in the params valueTypes (numbers and strings only).
        with pytest.raises(ConfigurationError, match="unsupported value"):
            ScenarioSpec.from_dict(
                {"name": "x", "workload": {"params": {"flag": True}}}
            )

    def test_null_only_where_nullable(self):
        with pytest.raises(ConfigurationError, match="must not be null"):
            ScenarioSpec.from_dict({"name": "x", "mesh": None})
        # shift_hops is nullable.
        spec = ScenarioSpec.from_dict(
            {"name": "x", "network": {"shift_hops": None}}
        )
        assert spec.network.shift_hops is None

    def test_unsupported_schema_version_rejected(self):
        with pytest.raises(ConfigurationError, match="schema version"):
            ScenarioSpec.from_dict(
                {"name": "x", "schema_version": SCHEMA_VERSION + 1}
            )

    def test_empty_sweep_scales_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(name="x", sweep_scales=())

    def test_nonpositive_sweep_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict({"name": "x", "sweep_scales": [1.0, 0.0]})

    def test_trace_initial_validated(self):
        with pytest.raises(ConfigurationError, match="initial"):
            TraceSpec(initial="lukewarm")
        assert TraceSpec(initial=40.0).initial == 40.0
        assert TraceSpec(initial="ambient").initial == "ambient"


class TestContentHash:
    def test_builtin_hashes_pairwise_distinct(self):
        hashes = [spec.content_hash() for spec in builtin_scenarios()]
        assert len(set(hashes)) == len(hashes)

    def test_any_leaf_change_changes_hash(self):
        base = ScenarioSpec(name="x")
        variants = [
            ScenarioSpec(name="y"),
            ScenarioSpec(name="x", description="d"),
            ScenarioSpec(name="x", chip=ChipSpec(die_width_mm=20.0)),
            ScenarioSpec(name="x", network=NetworkSpec(oni_count=8)),
            ScenarioSpec(name="x", workload=WorkloadSpec(seed=1)),
            ScenarioSpec(name="x", trace=TraceSpec(dt_s=0.25)),
            ScenarioSpec(name="x", trace=None),
            ScenarioSpec(name="x", sweep_scales=(1.0,)),
            ScenarioSpec(name="x", snr_floor_db=10.0),
        ]
        hashes = {base.content_hash()} | {v.content_hash() for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_hash_is_construction_independent(self):
        built = ScenarioSpec(
            name="x", workload=WorkloadSpec(kind="hotspot", total_power_w=9.0)
        )
        parsed = ScenarioSpec.from_json(built.to_json())
        assert built.content_hash() == parsed.content_hash()

    def test_short_hash_prefixes_content_hash(self):
        spec = ScenarioSpec(name="x")
        assert spec.content_hash().startswith(spec.short_hash())
        assert len(spec.short_hash()) == 12


class TestRegistry:
    def test_default_registry_has_six_builtins(self):
        registry = default_registry()
        assert len(registry) >= 6
        assert "scc_case_study" in registry

    def test_get_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            default_registry().get("nope")

    def test_reregistering_identical_spec_is_idempotent(self):
        registry = ScenarioRegistry()
        spec = ScenarioSpec(name="x")
        registry.register(spec)
        registry.register(ScenarioSpec(name="x"))
        assert len(registry) == 1

    def test_conflicting_redefinition_rejected(self):
        registry = ScenarioRegistry()
        registry.register(ScenarioSpec(name="x"))
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register(ScenarioSpec(name="x", snr_floor_db=9.0))
        registry.register(
            ScenarioSpec(name="x", snr_floor_db=9.0), overwrite=True
        )
        assert registry.get("x").snr_floor_db == 9.0

    def test_registry_to_dict_round_trips(self):
        registry = default_registry()
        for name, data in registry.to_dict().items():
            assert ScenarioSpec.from_dict(data) == registry.get(name)


class TestJsonSchema:
    def test_schema_covers_every_section(self):
        schema = scenario_json_schema()
        for section in ("chip", "mesh", "network", "power", "workload", "trace"):
            assert section in schema["properties"]
            assert schema["properties"][section]["additionalProperties"] is False

    def test_schema_matches_validator_fields(self):
        schema = scenario_json_schema()
        from repro.scenarios.spec import MeshSpec

        assert set(schema["properties"]["mesh"]["properties"]) == set(
            MeshSpec.SCHEMA
        )

    def test_schema_is_json_serialisable(self):
        json.dumps(scenario_json_schema())
