"""Property-style randomized tests: solver invariants on seeded random meshes.

Rather than pinning numbers, these tests assert *structural* properties that
must hold for every well-posed problem the library can express:

* the assembled conductance matrix is symmetric (discrete reciprocity);
* with purely convective boundaries at one ambient and non-negative sources,
  the steady-state temperature never drops below the ambient (discrete
  maximum principle);
* the operator is linear, so temperatures rise monotonically with total
  power and scale exactly with a scaled source field;
* the vectorized SNR engine (``analyze_many``) agrees with the pure-Python
  reference walk (``analyze_scalar``) on randomized ORNoC thermal states.

Each case runs over several seeds; the generators draw every geometric and
material parameter from a seeded :class:`random.Random`, so failures
reproduce exactly.
"""

import json
import random

import numpy as np
import pytest

from repro.scenarios import ScenarioSpec, canonical_json
from repro.geometry import Layer, LayerStack, Rect, grid_floorplan
from repro.materials import BEOL, COPPER, EPOXY, SILICON, THERMAL_INTERFACE
from repro.snr import LaserDriveConfig, OniThermalState
from repro.thermal import (
    BoundaryConditions,
    HeatSource,
    MeshBuilder,
    RomConfig,
    ScheduleSegment,
    SourceSchedule,
    SteadyStateSolver,
    TransientSolver,
    assemble_operator,
)

MATERIALS = (SILICON, COPPER, EPOXY, BEOL, THERMAL_INTERFACE)


def random_mesh(seed: int):
    """Seeded random package: 2-5 layers on a random die, random resolution."""
    rng = random.Random(seed)
    width_mm = rng.uniform(2.0, 6.0)
    height_mm = rng.uniform(2.0, 6.0)
    die = Rect.from_size_mm(0.0, 0.0, width_mm, height_mm)
    stack = LayerStack(die, name=f"random_stack_{seed}")
    for index in range(rng.randint(2, 5)):
        stack.add_layer(
            Layer(
                name=f"layer_{index}",
                thickness=rng.uniform(50.0, 500.0) * 1.0e-6,
                material=rng.choice(MATERIALS),
            )
        )
    builder = MeshBuilder(
        stack, base_cell_size_um=rng.uniform(500.0, 1500.0), max_cells=500_000
    )
    if rng.random() < 0.5:
        refinement = Rect.from_size_mm(
            width_mm * 0.25, height_mm * 0.25, width_mm * 0.3, height_mm * 0.3
        )
        builder.add_refinement(refinement, rng.uniform(150.0, 400.0))
    return builder.build(), rng


def random_boundaries(rng: random.Random, ambient_c: float) -> BoundaryConditions:
    return BoundaryConditions.package_default(
        ambient_c=ambient_c,
        top_coefficient_w_m2k=rng.uniform(500.0, 5000.0),
        bottom_coefficient_w_m2k=rng.choice([0.0, rng.uniform(5.0, 50.0)]),
    )


def random_sources(rng: random.Random, mesh, count: int):
    """Random positive box sources inside the mesh's bounding box."""
    bounds = mesh.bounding_box()
    sources = []
    for index in range(count):
        x0 = rng.uniform(bounds.x_min, bounds.x_max * 0.7)
        y0 = rng.uniform(bounds.y_min, bounds.y_max * 0.7)
        rect = Rect(
            x0,
            y0,
            min(x0 + rng.uniform(0.2, 1.0) * 1.0e-3, bounds.x_max),
            min(y0 + rng.uniform(0.2, 1.0) * 1.0e-3, bounds.y_max),
        )
        z0 = rng.uniform(bounds.z_min, (bounds.z_min + bounds.z_max) / 2.0)
        z1 = rng.uniform(z0, bounds.z_max)
        sources.append(
            HeatSource.from_rect(
                f"source_{index}", rect, z0, z1, rng.uniform(0.1, 5.0)
            )
        )
    return sources


class TestRandomMeshInvariants:
    @pytest.mark.parametrize("seed", range(6))
    def test_conductance_matrix_is_symmetric(self, seed):
        mesh, rng = random_mesh(seed)
        operator = assemble_operator(mesh, random_boundaries(rng, ambient_c=30.0))
        matrix = operator.matrix
        asymmetry = abs(matrix - matrix.T).max()
        assert asymmetry <= 1.0e-12 * abs(matrix.diagonal()).max()

    @pytest.mark.parametrize("seed", range(6))
    def test_temperature_never_below_ambient(self, seed):
        ambient_c = 25.0 + (seed % 3) * 10.0
        mesh, rng = random_mesh(seed)
        solver = SteadyStateSolver(mesh, random_boundaries(rng, ambient_c))
        thermal_map = solver.solve(random_sources(rng, mesh, rng.randint(1, 3)))
        assert thermal_map.global_min() >= ambient_c - 1.0e-9
        assert thermal_map.global_max() > ambient_c

    @pytest.mark.parametrize("seed", range(4))
    def test_monotonic_and_linear_in_total_power(self, seed):
        ambient_c = 35.0
        mesh, rng = random_mesh(seed + 100)
        solver = SteadyStateSolver(mesh, random_boundaries(rng, ambient_c))
        sources = random_sources(rng, mesh, 2)
        scaled = [source.scaled(2.0) for source in sources]
        base_map, scaled_map = solver.solve_many([sources, scaled]).maps
        base = base_map.temperatures_c
        double = scaled_map.temperatures_c
        # Monotonicity: more power never cools any cell.
        assert np.all(double >= base - 1.0e-9)
        # Linearity: the rise above ambient scales exactly with the sources.
        np.testing.assert_allclose(
            double - ambient_c, 2.0 * (base - ambient_c), rtol=1.0e-8, atol=1.0e-9
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_zero_power_is_uniformly_ambient(self, seed):
        ambient_c = 41.0
        mesh, rng = random_mesh(seed + 200)
        solver = SteadyStateSolver(mesh, random_boundaries(rng, ambient_c))
        thermal_map = solver.solve([])
        np.testing.assert_allclose(
            thermal_map.temperatures_c, ambient_c, rtol=0.0, atol=1.0e-9
        )

    @pytest.mark.parametrize("columns,rows", [(3, 2), (7, 5), (9, 3)])
    def test_grid_floorplan_tiles_fit_awkward_outlines(self, columns, rows):
        # 14 mm / 3 is not representable in binary; the grid must still fit.
        outline = Rect.from_size_mm(0.0, 0.0, 14.0, 11.0)
        floorplan = grid_floorplan(outline, columns=columns, rows=rows)
        assert len(floorplan) == columns * rows
        for instance in floorplan:
            assert outline.contains_rect(instance.rect)


def random_schedule(rng: random.Random, sources) -> SourceSchedule:
    """2-4 segments of random duration, each with a random source subset."""
    segments = []
    for _ in range(rng.randint(2, 4)):
        active = tuple(s for s in sources if rng.random() < 0.7)
        if not active:
            active = (rng.choice(sources),)
        segments.append(ScheduleSegment(rng.uniform(0.3, 1.5), active))
    return SourceSchedule(segments)


class TestRandomRomParity:
    """Reduced-order transient solves on seeded random problems.

    The invariants the reduced path must hold for *any* well-posed problem:
    the basis-building solve is byte-identical to plain LU (it IS the LU
    path plus a harvest), a reduced replay stays inside the golden
    temperature band (rtol 1e-5 / atol 1e-6), and a basis too starved to
    represent the trajectory is rejected by the residual check and replaced
    by the exact LU result, never silently served.
    """

    @pytest.mark.parametrize("seed", range(6))
    def test_rom_replay_within_temperature_bands(self, seed):
        mesh, rng = random_mesh(seed + 300)
        boundaries = random_boundaries(rng, ambient_c=30.0)
        sources = random_sources(rng, mesh, rng.randint(2, 3))
        schedule = random_schedule(rng, sources)
        dt = rng.uniform(0.1, 0.4)
        probes = {"whole": mesh.bounding_box()}
        reference = TransientSolver(mesh, boundaries).solve(
            schedule, dt_s=dt, probes=probes
        )
        solver = TransientSolver(mesh, boundaries)
        built = solver.solve(schedule, dt_s=dt, probes=probes, method="rom")
        assert built.diagnostics.rom_basis_built
        np.testing.assert_array_equal(
            built.probe("whole").temperatures_c,
            reference.probe("whole").temperatures_c,
        )
        replay = solver.solve(schedule, dt_s=dt, probes=probes, method="rom")
        assert replay.diagnostics.solver_method == "rom"
        assert (
            replay.diagnostics.rom_residual
            < solver.rom_config.residual_tol
        )
        np.testing.assert_allclose(
            replay.probe("whole").temperatures_c,
            reference.probe("whole").temperatures_c,
            rtol=1.0e-5,
            atol=1.0e-6,
        )
        np.testing.assert_allclose(
            replay.final_map.temperatures_c,
            reference.final_map.temperatures_c,
            rtol=1.0e-5,
            atol=1.0e-6,
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_starved_basis_falls_back_to_exact_lu(self, seed):
        mesh, rng = random_mesh(seed + 400)
        boundaries = random_boundaries(rng, ambient_c=25.0)
        sources = random_sources(rng, mesh, 2)
        # Millisecond alternation between two loads: a rank-1 basis cannot
        # track the switching, so the residual check must reject the replay.
        schedule = SourceSchedule(
            [
                ScheduleSegment(0.002, (sources[index % 2],))
                for index in range(6)
            ]
        )
        reference = TransientSolver(mesh, boundaries).solve(schedule, dt_s=0.001)
        solver = TransientSolver(
            mesh, boundaries, rom_config=RomConfig(max_dim=1)
        )
        solver.solve(schedule, dt_s=0.001, method="rom")
        second = solver.solve(schedule, dt_s=0.001, method="rom")
        assert second.diagnostics.rom_fallback
        assert second.diagnostics.solver_method == "lu"
        np.testing.assert_array_equal(
            second.final_map.temperatures_c, reference.final_map.temperatures_c
        )


def random_spec(seed: int) -> ScenarioSpec:
    """Seeded random scenario spec touching every section of the schema."""
    rng = random.Random(seed)
    workload_kind = rng.choice(
        ["uniform", "diagonal", "random", "hotspot", "checkerboard", "gradient"]
    )
    data = {
        "name": f"random_spec_{seed}",
        "description": f"randomized spec (seed {seed})",
        "chip": {
            "die_width_mm": rng.uniform(10.0, 30.0),
            "die_height_mm": rng.uniform(8.0, 24.0),
            "tile_columns": rng.randint(1, 8),
            "tile_rows": rng.randint(1, 6),
            "include_infrastructure": rng.random() < 0.5,
        },
        "mesh": {
            "oni_cell_size_um": rng.uniform(200.0, 800.0),
            "die_cell_size_um": rng.uniform(1000.0, 4000.0),
            "zoom_cell_size_um": rng.uniform(20.0, 50.0),
            "ambient_c": rng.uniform(20.0, 50.0),
        },
        "network": {
            "ring_length_mm": rng.uniform(8.0, 50.0),
            "oni_count": rng.randint(2, 32),
            "shift_hops": rng.choice([None, rng.randint(1, 5)]),
        },
        "power": {
            "vcsel_power_mw": rng.uniform(0.5, 8.0),
            "heater_ratio": rng.uniform(0.0, 1.0),
            "drive_power_mw": rng.choice([None, rng.uniform(1.0, 6.0)]),
        },
        "workload": {
            "kind": workload_kind,
            "total_power_w": rng.uniform(5.0, 50.0),
            "seed": rng.randint(0, 1000),
            "infrastructure_fraction": rng.uniform(0.0, 0.9),
            "params": {"hotspot_fraction": rng.uniform(0.1, 0.9)},
        },
        "trace": rng.choice(
            [
                None,
                {
                    "kind": rng.choice(
                        ["migration", "ramp", "random_walk", "two_phase"]
                    ),
                    "phases": rng.randint(2, 8),
                    "phase_duration_s": rng.uniform(0.5, 4.0),
                    "seed": rng.randint(0, 1000),
                    "dt_s": rng.uniform(0.1, 1.0),
                    "initial": rng.choice(
                        ["ambient", "steady", rng.uniform(20.0, 60.0)]
                    ),
                },
            ]
        ),
        "sweep_scales": sorted(
            rng.uniform(0.25, 2.0) for _ in range(rng.randint(1, 5))
        ),
        "snr_floor_db": rng.uniform(5.0, 25.0),
    }
    return ScenarioSpec.from_dict(data)


def shuffle_keys(value, rng: random.Random):
    """Deep copy with every dict's insertion order randomly permuted."""
    if isinstance(value, dict):
        keys = list(value)
        rng.shuffle(keys)
        return {key: shuffle_keys(value[key], rng) for key in keys}
    if isinstance(value, list):
        return [shuffle_keys(item, rng) for item in value]
    return value


class TestRandomSpecRoundTrip:
    """ScenarioSpec serialisation: hash-stable under every JSON detour.

    The content hash is what the golden harness, the bench IDs and the
    on-disk artifact store key on, so it must survive dict key reordering
    (JSON objects are unordered) and float re-serialisation (repr round
    trips) without moving by a single bit.
    """

    @pytest.mark.parametrize("seed", range(12))
    def test_dict_json_dict_round_trip_is_exact(self, seed):
        spec = random_spec(seed)
        rebuilt = ScenarioSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.to_dict() == spec.to_dict()
        assert rebuilt.content_hash() == spec.content_hash()

    @pytest.mark.parametrize("seed", range(12))
    def test_hash_stable_under_key_reordering(self, seed):
        spec = random_spec(seed)
        rng = random.Random(seed + 1)
        for _ in range(3):
            shuffled = shuffle_keys(spec.to_dict(), rng)
            # A non-canonical dump (insertion order preserved) genuinely
            # permutes the byte stream...
            dumped = json.dumps(shuffled)
            # ...yet the rebuilt spec hashes identically.
            rebuilt = ScenarioSpec.from_dict(json.loads(dumped))
            assert rebuilt.content_hash() == spec.content_hash()

    @pytest.mark.parametrize("seed", range(12))
    def test_hash_stable_under_float_reserialization(self, seed):
        spec = random_spec(seed)
        text = canonical_json(spec.to_dict())
        for _ in range(3):
            # repr round trip: parse the JSON floats and re-serialise them.
            text = canonical_json(json.loads(text))
        rebuilt = ScenarioSpec.from_dict(json.loads(text))
        assert rebuilt.content_hash() == spec.content_hash()

    @pytest.mark.parametrize("seed", range(6))
    def test_any_leaf_change_moves_the_hash(self, seed):
        spec = random_spec(seed)
        nudged = spec.with_overrides(
            {"workload.total_power_w": spec.workload.total_power_w + 0.125}
        )
        assert nudged.content_hash() != spec.content_hash()
        assert nudged.design_hash() != spec.design_hash()
        renamed = spec.with_overrides({"name": spec.name + "_renamed"})
        assert renamed.content_hash() != spec.content_hash()
        assert renamed.design_hash() == spec.design_hash()


class TestRandomSnrParity:
    """Vectorized vs scalar SNR on randomized thermal states."""

    @pytest.fixture(scope="class")
    def analyzer(self, small_flow):
        return small_flow.snr_analyzer()

    def random_states(self, rng: random.Random, flow):
        states = []
        for oni in flow.scenario.onis:
            average = rng.uniform(40.0, 80.0)
            states.append(
                OniThermalState(
                    name=oni.name,
                    average_temperature_c=average,
                    laser_temperature_c=average + rng.uniform(-2.0, 2.0),
                    microring_temperature_c=average + rng.uniform(-2.0, 2.0),
                )
            )
        return states

    @pytest.mark.parametrize("seed", range(8))
    def test_analyze_many_matches_analyze_scalar(self, seed, small_flow, analyzer):
        rng = random.Random(seed)
        states = self.random_states(rng, small_flow)
        drive = (
            LaserDriveConfig.from_dissipated_mw(rng.uniform(2.0, 6.0))
            if rng.random() < 0.5
            else LaserDriveConfig.from_current_ma(rng.uniform(0.5, 2.0))
        )
        scalar = analyzer.analyze_scalar(states, drive)
        batch = analyzer.analyze_many([states], drive).report(0)
        assert len(scalar.links) == len(batch.links)
        for scalar_link, batch_link in zip(scalar.links, batch.links):
            assert scalar_link.communication.name == batch_link.communication.name
            assert batch_link.snr_db == pytest.approx(
                scalar_link.snr_db, rel=1.0e-6, abs=1.0e-6
            )
            assert batch_link.signal_power_w == pytest.approx(
                scalar_link.signal_power_w, rel=1.0e-6, abs=1.0e-18
            )
            assert batch_link.crosstalk_power_w == pytest.approx(
                scalar_link.crosstalk_power_w, rel=1.0e-6, abs=1.0e-18
            )

    @pytest.mark.parametrize("seed", [17, 23])
    def test_batched_states_evaluate_independently(self, seed, small_flow, analyzer):
        """A state's result must not depend on its neighbours in the batch."""
        rng = random.Random(seed)
        batch_states = [self.random_states(rng, small_flow) for _ in range(4)]
        drive = LaserDriveConfig.from_dissipated_mw(3.6)
        together = analyzer.analyze_many(batch_states, drive)
        for index, states in enumerate(batch_states):
            alone = analyzer.analyze_many([states], drive)
            np.testing.assert_allclose(
                together.snr_db[index], alone.snr_db[0], rtol=1.0e-12, atol=0.0
            )
