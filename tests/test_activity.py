"""Tests for chip activity patterns and synthetic traces."""

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.activity import (
    ActivityPattern,
    ActivityTrace,
    SyntheticTraceGenerator,
    checkerboard_activity,
    diagonal_activity,
    from_mapping,
    gradient_activity,
    hotspot_activity,
    infrastructure_activity,
    random_activity,
    standard_activities,
    uniform_activity,
)
from repro.casestudy import build_scc_floorplan
from repro.errors import ConfigurationError
from repro.geometry import Rect, grid_floorplan


@pytest.fixture(scope="module")
def floorplan():
    return grid_floorplan(Rect.from_size_mm(0.0, 0.0, 24.0, 16.0), 6, 4)


@pytest.fixture(scope="module")
def scc_floorplan():
    return build_scc_floorplan()


class TestActivityPattern:
    def test_total_and_lookup(self):
        pattern = from_mapping("test", {"a": 1.0, "b": 2.0})
        assert pattern.total_power_w == pytest.approx(3.0)
        assert pattern.power_of("a") == 1.0
        assert pattern.power_of("missing") == 0.0

    def test_negative_power_rejected(self):
        with pytest.raises(ConfigurationError):
            from_mapping("bad", {"a": -1.0})

    def test_scaled_to(self):
        pattern = from_mapping("test", {"a": 1.0, "b": 3.0}).scaled_to(8.0)
        assert pattern.total_power_w == pytest.approx(8.0)
        assert pattern.power_of("b") == pytest.approx(6.0)

    def test_scaled_to_zero_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            from_mapping("zero", {"a": 0.0}).scaled_to(5.0)

    def test_merged_with_adds_power(self):
        first = from_mapping("a", {"x": 1.0, "y": 2.0})
        second = from_mapping("b", {"y": 3.0, "z": 4.0})
        merged = first.merged_with(second, name="ab")
        assert merged.power_of("y") == pytest.approx(5.0)
        assert merged.total_power_w == pytest.approx(10.0)

    def test_heat_sources_conserve_power(self, floorplan):
        pattern = uniform_activity(floorplan, 24.0)
        sources = pattern.heat_sources(floorplan, 0.0, 10e-6)
        assert sum(source.power_w for source in sources) == pytest.approx(24.0)
        assert len(sources) == 24

    def test_imbalance_uniform_is_one(self, floorplan):
        assert uniform_activity(floorplan, 24.0).imbalance() == pytest.approx(1.0)


class TestPatternGenerators:
    def test_uniform_splits_evenly(self, floorplan):
        pattern = uniform_activity(floorplan, 12.0)
        assert all(p == pytest.approx(0.5) for p in pattern.tile_powers_w.values())

    def test_diagonal_quadrants(self, floorplan):
        pattern = diagonal_activity(floorplan, low_quadrant_power_w=4.0, high_quadrant_power_w=8.0)
        assert pattern.total_power_w == pytest.approx(24.0)
        # A tile in the upper-left quadrant dissipates twice the power of one
        # in the upper-right quadrant.
        upper_left = pattern.power_of("tile_0_3")
        upper_right = pattern.power_of("tile_5_3")
        assert upper_left == pytest.approx(2.0 * upper_right)

    def test_random_activity_reproducible_and_scaled(self, floorplan):
        first = random_activity(floorplan, 20.0, seed=7)
        second = random_activity(floorplan, 20.0, seed=7)
        different = random_activity(floorplan, 20.0, seed=8)
        assert first.tile_powers_w == second.tile_powers_w
        assert first.tile_powers_w != different.tile_powers_w
        assert first.total_power_w == pytest.approx(20.0)

    def test_hotspot_concentrates_power(self, floorplan):
        pattern = hotspot_activity(floorplan, 20.0, hotspot_fraction=0.6, hotspot_tiles=2)
        assert pattern.total_power_w == pytest.approx(20.0)
        assert pattern.imbalance() > 3.0

    def test_checkerboard_and_gradient_totals(self, floorplan):
        assert checkerboard_activity(floorplan, 15.0).total_power_w == pytest.approx(15.0)
        assert gradient_activity(floorplan, 15.0, axis="y").total_power_w == pytest.approx(15.0)

    def test_gradient_increases_along_axis(self, floorplan):
        pattern = gradient_activity(floorplan, 24.0, axis="x")
        assert pattern.power_of("tile_5_0") > pattern.power_of("tile_0_0")

    def test_invalid_arguments(self, floorplan):
        with pytest.raises(ConfigurationError):
            uniform_activity(floorplan, -1.0)
        with pytest.raises(ConfigurationError):
            hotspot_activity(floorplan, 10.0, hotspot_fraction=1.5)
        with pytest.raises(ConfigurationError):
            gradient_activity(floorplan, 10.0, axis="z")

    @given(st.floats(min_value=1.0, max_value=200.0), st.integers(min_value=0, max_value=5))
    @hyp_settings(max_examples=20, deadline=None)
    def test_standard_activities_conserve_total(self, total, seed):
        floorplan = grid_floorplan(Rect.from_size_mm(0.0, 0.0, 24.0, 16.0), 6, 4)
        activities = standard_activities(floorplan, total, seed=seed)
        for pattern in activities.values():
            assert pattern.total_power_w == pytest.approx(total, rel=1e-9)


class TestInfrastructureAndSccActivities:
    def test_infrastructure_activity_targets_non_tile_blocks(self, scc_floorplan):
        pattern = infrastructure_activity(scc_floorplan, 5.0)
        assert pattern.total_power_w == pytest.approx(5.0)
        assert all(
            name.startswith(("memory_controller", "system_interface"))
            for name in pattern.tile_powers_w
        )

    def test_infrastructure_activity_empty_without_blocks(self, floorplan):
        pattern = infrastructure_activity(floorplan, 5.0)
        assert pattern.total_power_w == 0.0

    def test_standard_activities_on_scc_include_infrastructure(self, scc_floorplan):
        activities = standard_activities(scc_floorplan, 25.0, infrastructure_fraction=0.3)
        uniform = activities["uniform"]
        assert uniform.total_power_w == pytest.approx(25.0)
        infrastructure_power = sum(
            power
            for name, power in uniform.tile_powers_w.items()
            if not name.startswith("tile")
        )
        assert infrastructure_power == pytest.approx(25.0 * 0.3, rel=1e-9)

    def test_standard_activities_names(self, scc_floorplan):
        activities = standard_activities(scc_floorplan, 25.0)
        assert set(activities) == {"uniform", "diagonal", "random"}


class TestTraces:
    def test_random_walk_trace_statistics(self, floorplan):
        generator = SyntheticTraceGenerator(floorplan, seed=1)
        trace = generator.random_walk_trace(phases=5, mean_power_w=20.0)
        assert len(trace) == 5
        assert trace.total_duration_s == pytest.approx(5.0)
        assert trace.peak_power_w() >= trace.average_power_w() > 0.0

    def test_random_walk_reproducible(self, floorplan):
        first = SyntheticTraceGenerator(floorplan, seed=3).random_walk_trace(4, 10.0)
        second = SyntheticTraceGenerator(floorplan, seed=3).random_walk_trace(4, 10.0)
        assert first.time_averaged_activity().tile_powers_w == pytest.approx(
            second.time_averaged_activity().tile_powers_w
        )

    def test_migration_trace_moves_hotspot(self, floorplan):
        trace = SyntheticTraceGenerator(floorplan, seed=2).migration_trace(
            total_power_w=20.0, phases=3
        )
        hot_tiles_per_phase = []
        for phase in trace:
            hottest = max(
                phase.activity.tile_powers_w, key=phase.activity.tile_powers_w.get
            )
            hot_tiles_per_phase.append(hottest)
        assert len(set(hot_tiles_per_phase)) > 1

    def test_ramp_trace_monotone(self, floorplan):
        trace = SyntheticTraceGenerator(floorplan).ramp_trace(5.0, 25.0, phases=5)
        totals = [phase.activity.total_power_w for phase in trace]
        assert totals == sorted(totals)
        assert totals[0] == pytest.approx(5.0)
        assert totals[-1] == pytest.approx(25.0)

    def test_time_averaged_activity(self, floorplan):
        trace = SyntheticTraceGenerator(floorplan).ramp_trace(10.0, 20.0, phases=3)
        averaged = trace.time_averaged_activity()
        assert averaged.total_power_w == pytest.approx(trace.average_power_w())

    def test_worst_phase(self, floorplan):
        trace = SyntheticTraceGenerator(floorplan).ramp_trace(10.0, 20.0, phases=3)
        assert trace.worst_phase().activity.total_power_w == pytest.approx(20.0)

    def test_invalid_trace_arguments(self, floorplan):
        generator = SyntheticTraceGenerator(floorplan)
        with pytest.raises(ConfigurationError):
            generator.random_walk_trace(0, 10.0)
        with pytest.raises(ConfigurationError):
            generator.ramp_trace(10.0, 5.0)
        with pytest.raises(ConfigurationError):
            generator.migration_trace(10.0, phases=0)


class TestPatternQueries:
    def test_imbalance_of_empty_and_zero_patterns(self):
        assert from_mapping("empty", {}).imbalance() == 0.0
        assert from_mapping("zero", {"a": 0.0, "b": 0.0}).imbalance() == 0.0

    def test_imbalance_of_skewed_pattern(self):
        pattern = from_mapping("skew", {"a": 3.0, "b": 1.0})
        assert pattern.imbalance() == pytest.approx(1.5)

    def test_merged_with_keeps_first_name_by_default(self):
        first = from_mapping("base", {"x": 1.0})
        merged = first.merged_with(from_mapping("other", {"y": 2.0}))
        assert merged.name == "base"
        assert merged.total_power_w == pytest.approx(3.0)

    def test_scaled_to_preserves_relative_distribution(self):
        pattern = from_mapping("p", {"a": 1.0, "b": 3.0})
        scaled = pattern.scaled_to(2.0)
        assert scaled.power_of("b") / scaled.power_of("a") == pytest.approx(3.0)
        assert scaled.name == pattern.name


class TestTraceHelpers:
    def make_trace(self):
        trace = ActivityTrace(name="t")
        trace.add_phase(from_mapping("low", {"a": 1.0}), 2.0)
        trace.add_phase(from_mapping("high", {"a": 3.0}), 1.0)
        return trace

    def test_add_phase_rejects_bad_durations(self):
        trace = ActivityTrace(name="t")
        activity = from_mapping("a", {"x": 1.0})
        for duration in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ConfigurationError):
                trace.add_phase(activity, duration)
        assert len(trace) == 0

    def test_add_phase_rejects_non_pattern_activity(self):
        trace = ActivityTrace(name="t")
        with pytest.raises(ConfigurationError):
            trace.add_phase({"a": 1.0}, 1.0)

    def test_phase_boundaries(self):
        trace = self.make_trace()
        assert trace.phase_boundaries_s == pytest.approx([2.0, 3.0])

    def test_phase_at_and_power_at(self):
        trace = self.make_trace()
        assert trace.phase_at(0.0).activity.name == "low"
        assert trace.phase_at(1.999).activity.name == "low"
        assert trace.phase_at(2.0).activity.name == "high"
        assert trace.phase_at(3.0).activity.name == "high"
        assert trace.power_at(0.5) == pytest.approx(1.0)
        assert trace.power_at(2.5) == pytest.approx(3.0)

    def test_phase_at_rejects_out_of_range(self):
        trace = self.make_trace()
        with pytest.raises(ConfigurationError):
            trace.phase_at(-0.1)
        with pytest.raises(ConfigurationError):
            trace.phase_at(3.5)
        with pytest.raises(ConfigurationError):
            trace.phase_at(float("nan"))
        with pytest.raises(ConfigurationError):
            ActivityTrace(name="empty").phase_at(0.0)

    def test_aggregates_on_empty_trace_raise(self):
        empty = ActivityTrace(name="empty")
        for method in ("peak_power_w", "average_power_w", "time_averaged_activity", "worst_phase"):
            with pytest.raises(ConfigurationError):
                getattr(empty, method)()

    def test_to_schedule_includes_static_sources(self, floorplan):
        from repro.thermal import HeatSource
        from repro.geometry import Rect as GeomRect

        trace = SyntheticTraceGenerator(floorplan).ramp_trace(5.0, 10.0, phases=2)
        static = [
            HeatSource.from_rect(
                "static", GeomRect.from_size_mm(0.0, 0.0, 1.0, 1.0), 0.0, 1e-5, 0.5, group="vcsel"
            )
        ]
        schedule = trace.to_schedule(floorplan, 0.0, 1e-5, static_sources=static)
        assert len(schedule) == 2
        for segment, phase in zip(schedule, trace):
            total = sum(source.power_w for source in segment.sources)
            assert total == pytest.approx(phase.activity.total_power_w + 0.5)


class TestGeneratorSeedContract:
    def test_same_seed_same_trace_per_method(self, floorplan):
        for method, kwargs in (
            ("random_walk_trace", dict(phases=4, mean_power_w=10.0)),
            ("migration_trace", dict(total_power_w=10.0, phases=3)),
        ):
            first = getattr(SyntheticTraceGenerator(floorplan, seed=5), method)(**kwargs)
            second = getattr(SyntheticTraceGenerator(floorplan, seed=5), method)(**kwargs)
            for a, b in zip(first, second):
                assert a.activity.tile_powers_w == b.activity.tile_powers_w

    def test_call_order_does_not_change_results(self, floorplan):
        lone = SyntheticTraceGenerator(floorplan, seed=9).migration_trace(10.0, phases=3)
        generator = SyntheticTraceGenerator(floorplan, seed=9)
        generator.random_walk_trace(4, 10.0)
        generator.ramp_trace(1.0, 2.0)
        interleaved = generator.migration_trace(10.0, phases=3)
        for a, b in zip(lone, interleaved):
            assert a.activity.tile_powers_w == b.activity.tile_powers_w

    def test_methods_use_distinct_streams(self, floorplan):
        generator = SyntheticTraceGenerator(floorplan, seed=0)
        walk = generator.random_walk_trace(1, 10.0, volatility=1.0)
        migration = generator.migration_trace(10.0, phases=1)
        # Same seed, different methods: the first draws must differ (the
        # streams are derived from (seed, method), not from the seed alone).
        assert (
            walk.phases[0].activity.tile_powers_w
            != migration.phases[0].activity.tile_powers_w
        )

    def test_different_seeds_differ(self, floorplan):
        first = SyntheticTraceGenerator(floorplan, seed=0).migration_trace(10.0, phases=2)
        second = SyntheticTraceGenerator(floorplan, seed=1).migration_trace(10.0, phases=2)
        assert any(
            a.activity.tile_powers_w != b.activity.tile_powers_w
            for a, b in zip(first, second)
        )

    def test_seed_property_exposed(self, floorplan):
        assert SyntheticTraceGenerator(floorplan, seed=7).seed == 7
