"""ArtifactStore: round trips, integrity faults, eviction, concurrency.

This module doubles as the **store-backend conformance suite**: every test
class below is parametrized over both directory backends (flat
``objects/<key>.json`` and sharded ``objects/<key[:2]>/<key>.json``) through
the ``backend``/``store``/``make_store`` fixtures, so atomic writes,
corruption quarantine, LRU eviction, index rebuilds and writer races are
proven per backend, not just on the seed layout.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import telemetry
from repro.errors import ConfigurationError
from repro.campaigns import (
    ArtifactStore,
    FlatDirBackend,
    ShardedDirBackend,
    detect_backend,
    make_backend,
)
from repro.scenarios import ALL_PATHS, ScenarioArtifact, ScenarioSpec
from repro.thermal import ReducedBasis, clear_installed_bases, install_payload


def make_spec(index: int = 0) -> ScenarioSpec:
    return ScenarioSpec(name=f"store_spec_{index}").with_overrides(
        {"workload.total_power_w": 10.0 + index}
    )


def make_artifact(spec: ScenarioSpec) -> ScenarioArtifact:
    return ScenarioArtifact(
        scenario=spec.name,
        spec_hash=spec.content_hash(),
        schema_version=1,
        results={"steady": {"max_oni_temperature_c": 50.0}},
    )


@pytest.fixture(params=["flat", "sharded"])
def backend(request):
    """Both directory layouts: every class below must pass on each."""
    return request.param


@pytest.fixture
def store(tmp_path, backend):
    return ArtifactStore(tmp_path / "store", backend=backend)


@pytest.fixture
def make_store(tmp_path, backend):
    """Store factory pinning the parametrized backend (explicit roots)."""

    def _make(name="store", **kwargs):
        kwargs.setdefault("backend", backend)
        return ArtifactStore(tmp_path / name, **kwargs)

    return _make


class TestRoundTrip:
    def test_store_and_load(self, store):
        spec = make_spec()
        artifact = make_artifact(spec)
        key = store.store(spec, artifact, ALL_PATHS)
        loaded = store.load(spec, ALL_PATHS)
        assert loaded is not None
        assert loaded.to_dict() == artifact.to_dict()
        assert store.stats.hits == 1 and store.stats.writes == 1
        assert store.resolve_key(key[:10]) == key

    def test_miss_on_empty_store(self, store):
        assert store.load(make_spec(), ALL_PATHS) is None
        assert store.stats.misses == 1

    def test_key_depends_on_spec_paths_and_code_version(self, store, tmp_path):
        spec_a, spec_b = make_spec(0), make_spec(1)
        assert store.key_for(spec_a) != store.key_for(spec_b)
        assert store.key_for(spec_a, ("steady",)) != store.key_for(spec_a)
        # Path order does not matter; the set does.
        assert store.key_for(spec_a, ("snr", "steady")) == store.key_for(
            spec_a, ("steady", "snr")
        )
        other = ArtifactStore(tmp_path / "store", code_version="other")
        assert other.key_for(spec_a) != store.key_for(spec_a)

    def test_upgraded_code_version_does_not_serve_old_artifacts(self, tmp_path):
        spec = make_spec()
        old = ArtifactStore(tmp_path / "s", code_version="v1")
        old.store(spec, make_artifact(spec), ALL_PATHS)
        new = ArtifactStore(tmp_path / "s", code_version="v2")
        assert new.load(spec, ALL_PATHS) is None

    def test_store_rejects_mismatched_artifact(self, store):
        spec = make_spec(0)
        with pytest.raises(ConfigurationError, match="spec hash"):
            store.store(spec, make_artifact(make_spec(1)), ALL_PATHS)

    def test_entries_and_sizes(self, store):
        specs = [make_spec(index) for index in range(3)]
        for spec in specs:
            store.store(spec, make_artifact(spec), ALL_PATHS)
        entries = store.entries()
        assert len(entries) == len(store) == 3
        assert {entry.scenario for entry in entries} == {
            spec.name for spec in specs
        }
        assert store.total_size_bytes() == sum(
            entry.size_bytes for entry in entries
        )
        store.clear()
        assert len(store) == 0


class TestDurability:
    def test_atomic_write_fsyncs_file_before_publishing(
        self, store, monkeypatch
    ):
        """Satellite fix: object bytes are fsynced to disk *before* the
        rename publishes them (then the directory entry, best-effort), so a
        power loss can leave a missing object but never a published
        truncated one."""
        from repro.campaigns import store as store_module

        events = []
        real_fsync, real_replace = store_module.os.fsync, store_module.os.replace

        def recording_fsync(fd):
            events.append("fsync")
            return real_fsync(fd)

        def recording_replace(src, dst):
            events.append("replace")
            return real_replace(src, dst)

        monkeypatch.setattr(store_module.os, "fsync", recording_fsync)
        monkeypatch.setattr(store_module.os, "replace", recording_replace)
        spec = make_spec()
        store.store(spec, make_artifact(spec), ALL_PATHS)
        assert "replace" in events
        # Every publish (object and index alike) is preceded by a file
        # fsync and followed by a directory fsync.
        for position, event in enumerate(events):
            if event == "replace":
                assert events[position - 1] == "fsync"
                assert position + 1 < len(events)
                assert events[position + 1] == "fsync"


class TestIntegrityFaults:
    def put_one(self, store):
        spec = make_spec()
        key = store.store(spec, make_artifact(spec), ALL_PATHS)
        return spec, store._object_path(key)

    def test_truncated_object_is_detected_and_quarantined(self, store):
        spec, path = self.put_one(store)
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])
        assert store.load(spec, ALL_PATHS) is None
        assert store.stats.corrupt == 1
        # The damaged file is gone: the next run recomputes instead of
        # tripping over the same corruption again.
        assert not path.exists()

    def test_bit_flipped_payload_is_never_served(self, store):
        spec, path = self.put_one(store)
        record = json.loads(path.read_text())
        record["payload"]["results"]["steady"]["max_oni_temperature_c"] += 1.0
        path.write_text(json.dumps(record))
        assert store.load(spec, ALL_PATHS) is None
        assert store.stats.corrupt == 1
        assert not path.exists()

    def test_wrong_payload_spec_hash_is_a_miss(self, store):
        # A hash-valid record that answers for the wrong spec (e.g. a manual
        # file rename) is rejected by the spec-hash cross-check.
        spec, path = self.put_one(store)
        other = make_spec(1)
        target = store._object_path(store.key_for(other, ALL_PATHS))
        target.parent.mkdir(parents=True, exist_ok=True)
        path.rename(target)
        assert store.load(other, ALL_PATHS) is None

    def test_corrupt_envelope_is_quarantined_not_crashed(self, store):
        # Damage outside the payload (here: the scenario field the index
        # rebuild reads) must quarantine the object, not raise downstream.
        spec, path = self.put_one(store)
        record = json.loads(path.read_text())
        record["scenario"] = 1234
        path.write_text(json.dumps(record))
        store._index_path.unlink()
        assert store.entries() == []
        assert store.load(spec, ALL_PATHS) is None
        assert not path.exists()

    def test_get_record_does_not_quarantine(self, store):
        # Read-only inspection (CLI show/diff) must preserve the evidence.
        spec, path = self.put_one(store)
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])
        key = store.key_for(spec, ALL_PATHS)
        assert store.get_record(key) is None
        assert path.exists()
        # ...while load() still quarantines the same damage.
        assert store.load(spec, ALL_PATHS) is None
        assert not path.exists()

    def test_corrupt_index_is_rebuilt_from_objects(self, store):
        spec, _ = self.put_one(store)
        store._index_path.write_text("{ not json")
        loaded = store.load(spec, ALL_PATHS)
        assert loaded is not None
        assert len(store.entries()) == 1

    def test_recompute_after_corruption_round_trips(self, store):
        spec, path = self.put_one(store)
        path.write_text("garbage")
        assert store.load(spec, ALL_PATHS) is None
        store.store(spec, make_artifact(spec), ALL_PATHS)
        assert store.load(spec, ALL_PATHS) is not None


class TestEviction:
    def test_eviction_respects_size_bound(self, make_store):
        store = make_store(max_bytes=1)
        # Write several artifacts into a store bounded below one object: the
        # newest entry always survives, everything older is evicted.
        for index in range(4):
            spec = make_spec(index)
            store.store(spec, make_artifact(spec), ALL_PATHS)
        assert len(store) == 1
        assert store.stats.evictions == 3
        assert store.entries()[0].scenario == "store_spec_3"

    def test_lru_order_not_insertion_order(self, make_store):
        specs = [make_spec(index) for index in range(3)]
        artifacts = [make_artifact(spec) for spec in specs]
        sizes = []
        probe = make_store("probe")
        for spec, artifact in zip(specs, artifacts):
            key = probe.store(spec, artifact, ALL_PATHS)
            sizes.append(probe._object_path(key).stat().st_size)
        # Bound to exactly two objects.
        store = make_store(max_bytes=sizes[0] + sizes[1] + 1)
        store.store(specs[0], artifacts[0], ALL_PATHS)
        store.store(specs[1], artifacts[1], ALL_PATHS)
        # Touch the oldest: it becomes most recent and must survive.
        assert store.load(specs[0], ALL_PATHS) is not None
        store.store(specs[2], artifacts[2], ALL_PATHS)
        assert store.load(specs[0], ALL_PATHS) is not None
        assert store.load(specs[1], ALL_PATHS) is None
        assert store.load(specs[2], ALL_PATHS) is not None

    def test_invalid_bound(self, tmp_path):
        with pytest.raises(ConfigurationError, match="max_bytes"):
            ArtifactStore(tmp_path / "store", max_bytes=0)

    def test_eviction_counts_objects_the_index_lost(self, tmp_path, backend):
        """The size bound holds against disk truth, not the index.

        An object orphaned from the index (e.g. a racing writer's
        last-writer-wins index replacement) must still be adopted and
        evicted — the store may not grow past max_bytes just because the
        accelerator went stale.  (The second open uses layout auto-detect,
        so this also proves reopen-without-a-backend-argument per layout.)
        """
        root = tmp_path / "store"
        seed = ArtifactStore(root, backend=backend)
        orphan_spec = make_spec(0)
        seed.store(orphan_spec, make_artifact(orphan_spec), ALL_PATHS)
        # Simulate the race: the object survives, the index forgot it.
        seed._index_path.unlink()
        seed._write_index(
            {"version": 1, "sequence": 0, "entries": {}}
        )

        bounded = ArtifactStore(root, max_bytes=1)
        fresh_spec = make_spec(1)
        bounded.store(fresh_spec, make_artifact(fresh_spec), ALL_PATHS)
        # The orphan was adopted (zero recency) and evicted; only the
        # protected fresh object remains.
        assert len(bounded) == 1
        assert bounded.entries()[0].scenario == fresh_spec.name
        assert bounded.stats.evictions == 1

    def test_stale_index_entries_never_act_as_victims(self, tmp_path, backend):
        """An index entry whose object vanished must not absorb an eviction.

        If the phantom were popped as the LRU victim, its bytes — never part
        of the disk total — would be subtracted and the loop could exit with
        the bound still violated and no file actually deleted.
        """
        root = tmp_path / "store"
        seed = ArtifactStore(root, backend=backend)
        specs = [make_spec(index) for index in range(3)]
        keys = [
            seed.store(spec, make_artifact(spec), ALL_PATHS) for spec in specs
        ]
        # Simulate another process's eviction: object 0 is gone but its
        # (oldest, so first-victim) index entry survives.
        seed._object_path(keys[0]).unlink()

        size = seed._object_path(keys[1]).stat().st_size
        bounded = ArtifactStore(root, max_bytes=size + 1)
        fresh = make_spec(3)
        bounded.store(fresh, make_artifact(fresh), ALL_PATHS)
        # Real objects were evicted down to the bound (fresh one protected).
        assert len(bounded) == 1
        assert bounded.load(fresh, ALL_PATHS) is not None


class TestConcurrency:
    def test_concurrent_writers_do_not_corrupt(self, tmp_path, backend):
        """Many writers racing on one root: every object stays loadable.

        Each writer uses its own ArtifactStore instance (same directory) so
        index read-modify-write races genuinely happen; the objects are the
        source of truth and must all survive intact.
        """
        root = tmp_path / "store"
        specs = [make_spec(index) for index in range(16)]
        artifacts = [make_artifact(spec) for spec in specs]

        def write(index: int) -> str:
            store = ArtifactStore(root, backend=backend)
            return store.store(specs[index], artifacts[index], ALL_PATHS)

        with ThreadPoolExecutor(max_workers=8) as pool:
            keys = list(pool.map(write, range(len(specs))))
        assert len(set(keys)) == len(specs)

        reader = ArtifactStore(root)
        assert len(reader) == len(specs)
        for spec, artifact in zip(specs, artifacts):
            loaded = reader.load(spec, ALL_PATHS)
            assert loaded is not None
            assert loaded.to_dict() == artifact.to_dict()
        # The index (whatever subset of the races it recorded) lists every
        # object after a scan, and no temporary files linger.
        assert {entry.scenario for entry in reader.entries()} == {
            spec.name for spec in specs
        }
        assert not list((root / "objects").rglob(".*tmp"))

    def test_concurrent_readers_and_writers(self, tmp_path, backend):
        root = tmp_path / "store"
        seed_store = ArtifactStore(root, backend=backend)
        specs = [make_spec(index) for index in range(8)]
        for spec in specs:
            seed_store.store(spec, make_artifact(spec), ALL_PATHS)

        def churn(index: int) -> bool:
            store = ArtifactStore(root)
            spec = specs[index % len(specs)]
            if index % 2:
                store.store(spec, make_artifact(spec), ALL_PATHS)
            return store.load(spec, ALL_PATHS) is not None

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(churn, range(32)))
        assert all(outcomes)

    def test_listings_survive_objects_vanishing_mid_scan(
        self, store, monkeypatch
    ):
        """Satellite fix: an object unlinked between the directory listing
        and its ``stat`` (a racing eviction in another process) is skipped
        by ``total_size_bytes``/``entries``/``__len__``, not raised."""
        for index in range(3):
            spec = make_spec(index)
            store.store(spec, make_artifact(spec), ALL_PATHS)
        real_iter = store.backend.iter_object_paths
        real_size = store.total_size_bytes()

        def racing_iter():
            paths = list(real_iter())
            # The listing saw a fourth object, but the evictor unlinked it
            # before this reader could stat it.
            ghost = paths[0].with_name("0" * 16 + paths[0].suffix)
            return iter(paths + [ghost])

        monkeypatch.setattr(store.backend, "iter_object_paths", racing_iter)
        assert store.total_size_bytes() == real_size
        assert len(store.entries()) == 3

    def test_concurrent_evictor_never_breaks_listings(self, tmp_path, backend):
        """Live race: one thread unlinks every object while another keeps
        listing — the reader must finish clean, never with an OSError."""
        root = tmp_path / "store"
        writer = ArtifactStore(root, backend=backend)
        for index in range(24):
            spec = make_spec(index)
            writer.store(spec, make_artifact(spec), ALL_PATHS)
        reader = ArtifactStore(root, backend=backend)
        paths = list(writer.backend.iter_object_paths())

        def evict():
            for path in paths:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing test cleanup
                    pass

        evictor = threading.Thread(target=evict)
        evictor.start()
        try:
            while evictor.is_alive():
                reader.total_size_bytes()
                reader.entries()
                len(reader)
        finally:
            evictor.join()
        assert reader.total_size_bytes() == 0


class TestBackends:
    """Layout-specific behaviour: sharding, auto-detection, resolution."""

    def test_sharded_on_disk_layout(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", backend="sharded")
        spec = make_spec()
        key = store.store(spec, make_artifact(spec), ALL_PATHS)
        path = store._object_path(key)
        assert path == tmp_path / "store" / "objects" / key[:2] / f"{key}.json"
        assert path.exists()

    def test_flat_on_disk_layout(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", backend="flat")
        spec = make_spec()
        key = store.store(spec, make_artifact(spec), ALL_PATHS)
        assert store._object_path(key) == (
            tmp_path / "store" / "objects" / f"{key}.json"
        )

    def test_reopen_auto_detects_layout(self, tmp_path, backend):
        root = tmp_path / "store"
        spec = make_spec()
        ArtifactStore(root, backend=backend).store(
            spec, make_artifact(spec), ALL_PATHS
        )
        assert detect_backend(root) == backend
        reopened = ArtifactStore(root)  # no backend argument
        assert reopened.backend.name == backend
        loaded = reopened.load(spec, ALL_PATHS)
        assert loaded is not None and loaded.scenario == spec.name

    def test_empty_or_missing_store_detects_flat(self, tmp_path):
        assert detect_backend(tmp_path / "nonexistent") == "flat"
        store = ArtifactStore(tmp_path / "empty")
        assert store.backend.name == "flat"

    def test_prefix_resolution_shorter_than_shard_width(self, tmp_path):
        # A 1-character prefix cannot name a shard directory; resolution
        # must fall back to the full scan and still find the unique match.
        store = ArtifactStore(tmp_path / "store", backend="sharded")
        spec = make_spec()
        key = store.store(spec, make_artifact(spec), ALL_PATHS)
        assert store.resolve_key(key[:1]) == key
        assert store.resolve_key(key[:10]) == key

    def test_backend_instance_passes_through(self, tmp_path):
        root = tmp_path / "store"
        wide = ShardedDirBackend(root, shard_width=3)
        store = ArtifactStore(root, backend=wide)
        spec = make_spec()
        key = store.store(spec, make_artifact(spec), ALL_PATHS)
        assert store._object_path(key).parent.name == key[:3]
        assert isinstance(make_backend(root, FlatDirBackend(root)), FlatDirBackend)

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="unknown store backend"):
            ArtifactStore(tmp_path / "store", backend="cloud")
        with pytest.raises(ConfigurationError, match="shard_width"):
            ShardedDirBackend(tmp_path / "store", shard_width=0)

    def test_foreign_files_are_not_objects(self, tmp_path):
        # Stray files outside the layout contract (a README, a temp dir the
        # wrong depth down) must not be adopted by rebuilds or eviction.
        store = ArtifactStore(tmp_path / "store", backend="sharded")
        spec = make_spec()
        store.store(spec, make_artifact(spec), ALL_PATHS)
        (store.root / "objects" / "deadbeef.json").write_text("{}")
        (store.root / "objects" / "zz").mkdir(exist_ok=True)
        (store.root / "objects" / "zz" / "mismatched.json").write_text("{}")
        assert len(list(store.backend.iter_object_paths())) == 1
        store._index_path.unlink()
        assert len(store.entries()) == 1


class TestRomBasisRecords:
    @staticmethod
    def make_payload(key="a1b2c3d4e5f6a7b8", seed=0):
        rng = np.random.default_rng(seed)
        matrix, _ = np.linalg.qr(rng.standard_normal((10, 3)))
        return ReducedBasis(matrix, key).to_payload_json()

    def test_round_trip_and_warm_start_bundle(self, store):
        first = self.make_payload("a" * 16, seed=1)
        second = self.make_payload("b" * 16, seed=2)
        store.store_rom_basis(first)
        store.store_rom_basis(second)
        assert store.load_rom_basis("a" * 16) == first
        assert store.load_rom_basis("b" * 16) == second
        assert store.rom_basis_payloads() == sorted([first, second])
        # A served payload installs cleanly.
        assert install_payload(store.load_rom_basis("a" * 16)) == "a" * 16
        clear_installed_bases()

    def test_miss_returns_none_and_counts(self, store):
        misses_before = store.stats.misses
        assert store.load_rom_basis("nope") is None
        assert store.stats.misses == misses_before + 1

    def test_malformed_payload_rejected(self, store):
        with pytest.raises(ConfigurationError, match="reduced-basis"):
            store.store_rom_basis(json.dumps(["not", "a", "dict"]))
        with pytest.raises(ConfigurationError, match="content key"):
            store.store_rom_basis(json.dumps({"data": "zz"}))

    def test_basis_records_coexist_with_artifacts(self, store):
        spec = make_spec()
        artifact_key = store.store(spec, make_artifact(spec), ALL_PATHS)
        store.store_rom_basis(self.make_payload("c" * 16, seed=3))
        assert store.load(spec, ALL_PATHS) is not None
        assert len(store.rom_basis_payloads()) == 1
        kinds = {entry.paths for entry in store.entries()}
        assert ("rom_basis",) in kinds
        assert any(entry.key == artifact_key for entry in store.entries())

    def test_load_telemetry_parity_with_artifact_load(self, store):
        """Satellite fix: ``load_rom_basis`` emits ``store.hits``/
        ``store.misses`` counters and a ``store.load`` span exactly like
        artifact ``load`` does — warm-start traffic was invisible in
        ``/stats`` before."""
        payload = self.make_payload("e" * 16, seed=5)
        store.store_rom_basis(payload)
        with telemetry.enabled_scope():
            with telemetry.collect() as collector:
                assert store.load_rom_basis("e" * 16) == payload
                assert store.load_rom_basis("f" * 16) is None
        assert collector.registry.counter_value("store.hits") == 1
        assert collector.registry.counter_value("store.misses") == 1
        spans = [r for r in collector.spans if r.name == "store.load"]
        assert sorted(r.attrs["hit"] for r in spans) == [False, True]
        assert all(
            r.attrs["scenario"].startswith("rom-basis:") for r in spans
        )

    def test_corrupt_basis_record_is_a_miss(self, store):
        store.store_rom_basis(self.make_payload("d" * 16, seed=4))
        key = next(
            entry.key
            for entry in store.entries()
            if entry.paths == ("rom_basis",)
        )
        path = store._object_path(key)
        path.write_text(path.read_text(encoding="utf-8")[:-25], encoding="utf-8")
        assert store.load_rom_basis("d" * 16) is None


class TestTransientMethodKeying:
    def test_method_folds_into_the_key_only_when_not_lu(self, store):
        spec = make_spec()
        default = store.key_for(spec, ALL_PATHS)
        assert default == store.key_for(spec, ALL_PATHS, transient_method="lu")
        assert default != store.key_for(spec, ALL_PATHS, transient_method="rom")
        assert store.key_for(
            spec, ALL_PATHS, transient_method="rom"
        ) != store.key_for(spec, ALL_PATHS, transient_method="auto")

    def test_artifacts_of_different_methods_never_answer_for_each_other(self, store):
        spec = make_spec()
        artifact = make_artifact(spec)
        store.store(spec, artifact, ALL_PATHS, transient_method="rom")
        assert store.load(spec, ALL_PATHS) is None
        served = store.load(spec, ALL_PATHS, transient_method="rom")
        assert served is not None and served.scenario == spec.name
