"""Tests for the ONI layout generator and the instantiated interface."""

import pytest

from repro.errors import ConfigurationError, GeometryError
from repro.geometry import Layer, LayerStack, Rect
from repro.materials import OPTICAL_LAYER, SILICON
from repro.oni import (
    OniLayoutParameters,
    OniPowerConfig,
    OpticalNetworkInterface,
    generate_chessboard_layout,
    place_onis,
)
from repro.thermal import BoundaryConditions, FaceCondition, MeshBuilder, SteadyStateSolver


class TestOniLayout:
    def test_device_counts_match_paper_configuration(self):
        """4 waveguides x 4 lasers per waveguide = 16 transmitters and receivers."""
        layout = generate_chessboard_layout()
        assert layout.count_of_kind("vcsel") == 16
        assert layout.count_of_kind("microring") == 16
        assert layout.count_of_kind("photodetector") == 16
        assert layout.count_of_kind("heater") == 16
        assert layout.count_of_kind("driver") == 16

    def test_custom_layout_counts(self):
        params = OniLayoutParameters(waveguide_count=2, lasers_per_waveguide=3)
        layout = generate_chessboard_layout(params)
        assert layout.count_of_kind("vcsel") == 6
        assert layout.count_of_kind("microring") == 6

    def test_devices_fit_inside_footprint(self):
        layout = generate_chessboard_layout()
        footprint = layout.footprint
        for placement in layout.placements:
            assert footprint.contains_rect(placement.rect), placement.name

    def test_chessboard_alternation(self):
        """Along each waveguide, transmitters and receivers alternate."""
        layout = generate_chessboard_layout()
        for waveguide in range(4):
            row = [
                p
                for p in layout.placements
                if p.waveguide_index == waveguide and p.kind in ("vcsel", "microring")
            ]
            row.sort(key=lambda p: p.rect.center[0])
            kinds = [p.kind for p in row]
            for first, second in zip(kinds, kinds[1:]):
                assert first != second

    def test_adjacent_waveguides_are_shifted(self):
        """The chessboard shifts the pattern between neighbouring waveguides."""
        layout = generate_chessboard_layout()

        def first_kind(waveguide):
            row = [
                p
                for p in layout.placements
                if p.waveguide_index == waveguide and p.kind in ("vcsel", "microring")
            ]
            return min(row, key=lambda p: p.rect.center[0]).kind

        assert first_kind(0) != first_kind(1)

    def test_unique_names(self):
        layout = generate_chessboard_layout()
        names = [p.name for p in layout.placements]
        assert len(names) == len(set(names))

    def test_by_name_lookup(self):
        layout = generate_chessboard_layout()
        lookup = layout.by_name()
        assert "vcsel_w0_t0" in lookup
        assert lookup["vcsel_w0_t0"].kind == "vcsel"

    def test_invalid_parameters(self):
        with pytest.raises(GeometryError):
            OniLayoutParameters(waveguide_count=0)
        with pytest.raises(GeometryError):
            OniLayoutParameters(site_pitch_um=5.0)  # smaller than the VCSEL
        with pytest.raises(GeometryError):
            generate_chessboard_layout().devices_of_kind("transistor")


class TestOniPowerConfig:
    def test_defaults_are_paper_operating_point(self):
        power = OniPowerConfig()
        assert power.vcsel_power_w == pytest.approx(3.6e-3)
        assert power.heater_power_w == pytest.approx(1.08e-3)
        # Worst case Pdriver = PVCSEL.
        assert power.effective_driver_power_w == pytest.approx(3.6e-3)

    def test_heater_ratio_helper(self):
        power = OniPowerConfig(vcsel_power_w=6.0e-3).with_heater_ratio(0.3)
        assert power.heater_power_w == pytest.approx(1.8e-3)

    def test_explicit_driver_power(self):
        power = OniPowerConfig(vcsel_power_w=2.0e-3, driver_power_w=1.0e-3)
        assert power.effective_driver_power_w == pytest.approx(1.0e-3)

    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            OniPowerConfig(vcsel_power_w=-1.0)
        with pytest.raises(ConfigurationError):
            OniPowerConfig().with_heater_ratio(-0.5)


class TestOpticalNetworkInterface:
    def _oni(self, power=None):
        return OpticalNetworkInterface("oni_test", origin=(1.0e-3, 2.0e-3), power=power)

    def test_footprint_is_translated(self):
        oni = self._oni()
        assert oni.footprint.x_min == pytest.approx(1.0e-3)
        assert oni.footprint.y_min == pytest.approx(2.0e-3)

    def test_power_budget(self):
        oni = self._oni(OniPowerConfig(vcsel_power_w=6.0e-3, heater_power_w=1.8e-3))
        assert oni.total_optical_layer_power_w() == pytest.approx(16 * 6.0e-3 + 16 * 1.8e-3)
        assert oni.total_driver_power_w() == pytest.approx(16 * 6.0e-3)
        assert oni.total_power_w() == pytest.approx(
            oni.total_optical_layer_power_w() + oni.total_driver_power_w()
        )

    def test_heat_sources_groups_and_power(self):
        oni = self._oni(OniPowerConfig(vcsel_power_w=2.0e-3, heater_power_w=0.5e-3))
        sources = oni.heat_sources((0.0, 4.0e-6), driver_z_range=(-20e-6, -10e-6))
        groups = {source.group for source in sources}
        assert groups == {"vcsel", "heater", "driver"}
        total = sum(source.power_w for source in sources)
        assert total == pytest.approx(oni.total_power_w())

    def test_zero_heater_power_emits_no_heater_sources(self):
        oni = self._oni(OniPowerConfig(vcsel_power_w=2.0e-3, heater_power_w=0.0))
        sources = oni.heat_sources((0.0, 4.0e-6))
        assert all(source.group != "heater" for source in sources)

    def test_with_power_preserves_geometry(self):
        oni = self._oni()
        other = oni.with_power(OniPowerConfig(vcsel_power_w=1.0e-3))
        assert other.footprint == oni.footprint
        assert other.power.vcsel_power_w == pytest.approx(1.0e-3)

    def test_summary_keys(self):
        summary = self._oni().summary()
        assert summary["vcsel_count"] == 16
        assert "total_power_w" in summary

    def test_place_onis_shares_layout(self):
        onis = place_onis([("a", (0.0, 0.0)), ("b", (1.0e-3, 0.0))])
        assert onis[0].layout is onis[1].layout
        assert onis[0].name == "a"

    def test_gradient_temperature_from_thermal_map(self):
        """End-to-end: an ONI dissipating power in a small test stack shows a
        positive VCSEL-to-microring gradient that the heater reduces."""
        footprint = Rect.from_size_mm(0.0, 0.0, 3.0, 3.0)
        stack = LayerStack(footprint)
        stack.add_layer(Layer(name="bulk", thickness=300e-6, material=SILICON))
        stack.add_layer(Layer(name="optical", thickness=4e-6, material=OPTICAL_LAYER))
        stack.add_layer(Layer(name="cap", thickness=50e-6, material=SILICON))
        optical_z = stack.z_bounds("optical")

        oni = OpticalNetworkInterface(
            "oni", origin=(1.2e-3, 1.3e-3), power=OniPowerConfig(vcsel_power_w=4.0e-3, heater_power_w=0.0)
        )
        builder = MeshBuilder(stack, base_cell_size_um=150.0, vertical_target_um=50.0)
        builder.add_refinement(oni.footprint, 25.0)
        mesh = builder.build()
        boundaries = BoundaryConditions()
        boundaries.set_face("z_max", FaceCondition.convective(30.0, 3000.0))
        solver = SteadyStateSolver(mesh, boundaries)

        no_heater_map = solver.solve(oni.heat_sources(optical_z))
        no_heater_gradient = oni.gradient_temperature_c(no_heater_map, optical_z)
        assert oni.laser_temperature_c(no_heater_map, optical_z) > oni.microring_temperature_c(
            no_heater_map, optical_z
        )
        assert no_heater_gradient > 0.0

        heated = oni.with_power(OniPowerConfig(vcsel_power_w=4.0e-3).with_heater_ratio(0.3))
        heated_map = solver.solve(heated.heat_sources(optical_z))
        heated_gradient = heated.gradient_temperature_c(heated_map, optical_z)
        assert heated_gradient < no_heater_gradient
