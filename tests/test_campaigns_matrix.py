"""Scenario matrices: expansion, deduplication, naming, population growth."""

import pytest

from repro.errors import ConfigurationError
from repro.campaigns import (
    GOLDEN_REPRESENTATIVES,
    MatrixAxis,
    ScenarioMatrix,
    axis_label,
    builtin_matrices,
    campaign_registry,
    get_matrix,
    golden_representative_specs,
    register_golden_representatives,
)
from repro.scenarios import ScenarioRegistry, ScenarioSpec, builtin_scenarios


class TestAxisLabel:
    def test_float_labels_trim_trailing_zeros(self):
        assert axis_label(18.0) == "18"
        assert axis_label(32.4) == "32.4"

    def test_int_string_bool(self):
        assert axis_label(12) == "12"
        assert axis_label("hotspot") == "hotspot"
        assert axis_label(True) == "on"

    def test_composite_values_need_explicit_labels(self):
        with pytest.raises(ConfigurationError, match="explicit label"):
            axis_label({"die_width_mm": 14.0})


class TestMatrixAxis:
    def test_label_count_must_match_values(self):
        with pytest.raises(ConfigurationError, match="labels"):
            MatrixAxis(name="x", path="p", values=(1, 2), labels=("one",))

    def test_labels_must_be_unique(self):
        with pytest.raises(ConfigurationError, match="unique"):
            MatrixAxis(name="x", path="p", values=(1.0, 1), labels=None)

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigurationError, match="no values"):
            MatrixAxis(name="x", path="p", values=())


class TestExpansion:
    def test_cartesian_product_size_and_names(self):
        base = ScenarioSpec(name="base")
        matrix = ScenarioMatrix(
            name="demo",
            description="demo matrix",
            base=base,
            axes=(
                MatrixAxis(
                    name="ring",
                    path="network.ring_length_mm",
                    values=(18.0, 32.4),
                ),
                MatrixAxis(name="oni", path="network.oni_count", values=(6, 8)),
            ),
        )
        points = matrix.points()
        assert matrix.size() == 4
        assert [point.spec.name for point in points] == [
            "demo-ring_18-oni_6",
            "demo-ring_18-oni_8",
            "demo-ring_32.4-oni_6",
            "demo-ring_32.4-oni_8",
        ]
        # Axis labels ride along for the campaign summary tables.
        assert points[2].axes == {"ring": "32.4", "oni": "6"}
        # Every expanded spec actually carries the overridden values.
        assert points[3].spec.network.ring_length_mm == 32.4
        assert points[3].spec.network.oni_count == 8

    def test_expansion_is_schema_validated(self):
        base = ScenarioSpec(name="base")
        matrix = ScenarioMatrix(
            name="bad",
            description="invalid axis value",
            base=base,
            axes=(
                MatrixAxis(name="oni", path="network.oni_count", values=(1,)),
            ),
        )
        with pytest.raises(ConfigurationError, match="minimum"):
            matrix.points()

    def test_unknown_path_is_rejected(self):
        base = ScenarioSpec(name="base")
        matrix = ScenarioMatrix(
            name="bad",
            description="unknown path",
            base=base,
            axes=(MatrixAxis(name="x", path="network.bogus", values=(1,)),),
        )
        with pytest.raises(ConfigurationError, match="unknown fields"):
            matrix.points()

    def test_duplicate_designs_are_deduplicated(self):
        base = ScenarioSpec(name="base")
        matrix = ScenarioMatrix(
            name="dup",
            description="colliding axis values",
            base=base,
            axes=(
                MatrixAxis(
                    name="pw",
                    path="workload.total_power_w",
                    values=(25.0, 25.0, 30.0),
                    labels=("a", "b", "c"),
                ),
            ),
        )
        points = matrix.points()
        # Two labels name the same physical configuration: only the first
        # survives the design-hash dedup.
        assert [point.spec.name for point in points] == [
            "dup-pw_a",
            "dup-pw_c",
        ]

    def test_no_axes_yields_single_renamed_point(self):
        base = ScenarioSpec(name="base")
        matrix = ScenarioMatrix(
            name="solo", description="no axes", base=base, axes=()
        )
        points = matrix.points()
        assert len(points) == 1
        assert points[0].spec.name == "solo"
        assert points[0].axes == {}


class TestSpecParametrization:
    def test_with_overrides_leaf(self):
        spec = ScenarioSpec(name="base")
        patched = spec.with_overrides({"network.ring_length_mm": 32.4})
        assert patched.network.ring_length_mm == 32.4
        # The original spec is untouched (frozen dataclasses).
        assert spec.network.ring_length_mm == 18.0

    def test_with_overrides_whole_section_and_null_trace(self):
        spec = ScenarioSpec(name="base")
        patched = spec.with_overrides({"trace": None, "name": "renamed"})
        assert patched.trace is None
        assert patched.name == "renamed"

    def test_with_overrides_bad_intermediate(self):
        spec = ScenarioSpec(name="base")
        with pytest.raises(ConfigurationError, match="not a spec section"):
            spec.with_overrides({"name.sub": 1})

    def test_design_hash_ignores_name_and_description(self):
        a = ScenarioSpec(name="a", description="one")
        b = ScenarioSpec(name="b", description="two")
        assert a.content_hash() != b.content_hash()
        assert a.design_hash() == b.design_hash()
        c = a.with_overrides({"network.oni_count": 8})
        assert c.design_hash() != a.design_hash()


class TestBuiltinMatrices:
    def test_population_grows_past_forty(self):
        registry = campaign_registry()
        # The hand-registered catalogue stays at six built-ins...
        assert len(builtin_scenarios()) == 6
        # ...while the generative population passes forty.
        assert len(registry) >= 40
        # Every generated spec validates through a full JSON round trip.
        for spec in registry:
            assert ScenarioSpec.from_json(spec.to_json()).content_hash() == (
                spec.content_hash()
            )

    def test_generated_names_are_unique(self):
        names = [
            point.spec.name
            for matrix in builtin_matrices().values()
            for point in matrix.points()
        ]
        assert len(names) == len(set(names))

    def test_get_matrix_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown campaign"):
            get_matrix("nope")

    def test_golden_representatives_cover_three_axis_families(self):
        specs = golden_representative_specs()
        assert [spec.name for spec in specs] == list(GOLDEN_REPRESENTATIVES)
        families = {name.split("-")[0] for name in GOLDEN_REPRESENTATIVES}
        assert families == {"ring_geometry", "workload_grid", "pvcsel_heater"}

    def test_register_golden_representatives_is_idempotent(self):
        registry = ScenarioRegistry()
        register_golden_representatives(registry)
        register_golden_representatives(registry)
        assert len(registry) == len(GOLDEN_REPRESENTATIVES)
