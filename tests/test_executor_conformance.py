"""Executor-conformance suite: every substrate is byte-identical to serial.

The acceptance pin of the execution-kernel refactor.  Part one runs the same
campaign through all four executors (serial / process / async / queue) and
asserts that artifacts, :class:`~repro.campaigns.CampaignReport` documents
and store *objects* agree byte for byte with the serial reference — only the
``index.json`` recency accelerator may differ, because completion order is
genuinely substrate-dependent.  Part two injects faults into the queue
executor (killed workers, hung workers, transient pickling failures, poison
specs) and asserts campaigns still complete with correct artifacts and full
per-spec failure provenance in the report.
"""

import asyncio
import hashlib
import json
import os
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Tuple

import pytest

from repro import telemetry
from repro.errors import ConfigurationError
from repro.campaigns import (
    ArtifactStore,
    AsyncExecutor,
    CampaignRunner,
    EvaluationKernel,
    MatrixAxis,
    ProcessExecutor,
    QueueExecutor,
    ScenarioMatrix,
    SerialExecutor,
    SpecExecutionError,
    WorkItem,
    make_executor,
)
from repro.scenarios import (
    ScenarioRunner,
    ScenarioSpec,
    compare_artifact_dicts,
)
from repro.thermal import clear_installed_bases

#: Smallest campaign exercising every analysis path: 2 tiny specs.
MATRIX = ScenarioMatrix(
    name="conformance",
    description="Two-point campaign for executor-conformance tests",
    base=ScenarioSpec.from_dict(
        {
            "name": "conformance_base",
            "chip": {
                "die_width_mm": 14.0,
                "die_height_mm": 11.0,
                "tile_columns": 3,
                "tile_rows": 2,
                "include_infrastructure": False,
            },
            "mesh": {
                "oni_cell_size_um": 500.0,
                "die_cell_size_um": 2500.0,
                "zoom_cell_size_um": 40.0,
            },
            "network": {"ring_length_mm": 9.0, "oni_count": 4},
            "workload": {"kind": "uniform", "total_power_w": 8.0},
            "trace": {
                "kind": "two_phase",
                "phases": 2,
                "phase_duration_s": 2.0,
            },
        }
    ),
    axes=(
        MatrixAxis(
            name="pvcsel", path="power.vcsel_power_mw", values=(3.6, 4.8)
        ),
    ),
)

#: Wider, steady-only matrix for the fault-injection campaigns.
FAULT_MATRIX = ScenarioMatrix(
    name="faults",
    description="Three-point steady-only campaign for fault injection",
    base=MATRIX.base.with_overrides({"name": "fault_base"}),
    axes=(
        MatrixAxis(
            name="pvcsel",
            path="power.vcsel_power_mw",
            values=(3.6, 4.2, 4.8),
        ),
    ),
)

FAULT_NAMES = [point.spec.name for point in FAULT_MATRIX.points()]

#: The conformance matrix of executor strategies (ids keyed for CI -k).
EXECUTORS = {
    "exec_serial": lambda: SerialExecutor(),
    "exec_process": lambda: ProcessExecutor(workers=2),
    "exec_async": lambda: AsyncExecutor(concurrency=2),
    "exec_queue": lambda: QueueExecutor(workers=2, max_retries=1),
}


def store_object_digests(root):
    """``{object file name: sha256}`` of a store's objects (any backend).

    Deliberately ignores ``index.json``: the recency accelerator encodes
    completion order, which is the one thing executors may legitimately do
    differently.  The objects — keys and bytes — are the store contents the
    conformance contract covers.
    """
    return {
        path.name: hashlib.sha256(path.read_bytes()).hexdigest()
        for path in sorted(Path(root).glob("objects/**/*.json"))
    }


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    """Serial campaign against a fresh store: the conformance reference."""
    root = tmp_path_factory.mktemp("serial_store")
    report = CampaignRunner(
        MATRIX, store=ArtifactStore(root), executor="serial"
    ).run()
    return report, store_object_digests(root)


class TestExecutorConformance:
    """Every executor must reproduce the serial campaign byte for byte."""

    @pytest.mark.parametrize("executor_id", sorted(EXECUTORS))
    def test_report_and_store_parity(
        self, executor_id, serial_reference, tmp_path
    ):
        reference, reference_objects = serial_reference
        executor = EXECUTORS[executor_id]()
        store = ArtifactStore(tmp_path / "store")
        report = CampaignRunner(MATRIX, store=store, executor=executor).run()
        # Byte-identical artifacts AND identical CampaignReport documents
        # (summary tables, engine counters, store counters, provenance).
        assert report.to_json() == reference.to_json()
        # Identical store contents: same keys, same object bytes.
        assert store_object_digests(tmp_path / "store") == reference_objects

    @pytest.mark.parametrize("executor_id", sorted(EXECUTORS))
    def test_storeless_parity(self, executor_id, serial_reference):
        reference, _ = serial_reference
        report = CampaignRunner(MATRIX, executor=EXECUTORS[executor_id]()).run()
        assert report.artifacts == reference.artifacts
        assert report.engine == reference.engine
        assert report.failures == {}

    def test_warm_replay_identical_for_every_executor(
        self, serial_reference, tmp_path
    ):
        """A store populated by any executor serves any other executor."""
        reference, _ = serial_reference
        store_root = tmp_path / "store"
        CampaignRunner(
            MATRIX,
            store=ArtifactStore(store_root),
            executor=QueueExecutor(workers=2),
        ).run()
        for executor_id in sorted(EXECUTORS):
            warm = CampaignRunner(
                MATRIX,
                store=ArtifactStore(store_root),
                executor=EXECUTORS[executor_id](),
            ).run()
            assert warm.summary["store_hits"] == 2, executor_id
            assert warm.artifacts == reference.artifacts, executor_id


def strip_telemetry(artifact):
    """The artifact with its ``results.telemetry`` provenance removed."""
    return {
        **artifact,
        "results": {
            key: value
            for key, value in artifact["results"].items()
            if key != "telemetry"
        },
    }


class TestTelemetryConformance:
    """Telemetry must observe campaigns, not change what they compute.

    An instrumented run may add exactly one thing to an artifact — the
    ``results.telemetry`` provenance subdict — and everything else must stay
    byte-identical to the uninstrumented serial reference, whatever executor
    carried the spans home.
    """

    @pytest.mark.parametrize("executor_id", sorted(EXECUTORS))
    def test_artifacts_identical_modulo_telemetry_subdict(
        self, executor_id, serial_reference
    ):
        reference, _ = serial_reference
        report = CampaignRunner(
            MATRIX, executor=EXECUTORS[executor_id](), telemetry=True
        ).run()
        assert not telemetry.is_enabled()  # the scope was torn down
        assert report.telemetry and report.telemetry["enabled"] is True
        assert sorted(report.artifacts) == sorted(reference.artifacts)
        for name, artifact in report.artifacts.items():
            assert "telemetry" in artifact["results"], executor_id
            assert json.dumps(
                strip_telemetry(artifact), sort_keys=True
            ) == json.dumps(reference.artifacts[name], sort_keys=True), name
            # The golden comparator skips the provenance subdict outright.
            assert compare_artifact_dicts(
                reference.artifacts[name], artifact
            ) == []
        assert report.engine == reference.engine

    @pytest.mark.parametrize("executor_id", sorted(EXECUTORS))
    def test_every_spec_span_reaches_the_report(
        self, executor_id, serial_reference
    ):
        """Cross-process aggregation: one ``spec:`` span per scenario lands
        in the merged trace whatever process evaluated it."""
        report = CampaignRunner(
            MATRIX, executor=EXECUTORS[executor_id](), telemetry=True
        ).run()
        names = [record["name"] for record in report.telemetry["trace"]]
        for point in MATRIX.points():
            assert names.count(f"spec:{point.spec.name}") == 1, executor_id
        assert f"campaign:{MATRIX.name}" in names
        counters = report.telemetry["metrics"]["counters"]
        assert counters["executor.dispatches"] == len(MATRIX.points())

    def test_disabled_report_has_no_telemetry_section(self, serial_reference):
        reference, _ = serial_reference
        assert reference.telemetry is None
        assert json.loads(reference.to_json())["telemetry"] is None


@pytest.fixture(scope="module")
def rom_payloads():
    """Reduced bases of both conformance specs, harvested by a build pass."""
    payloads = []
    for point in MATRIX.points():
        runner = ScenarioRunner(point.spec, transient_method="rom")
        runner.run(("transient",))
        payloads.extend(runner.flow().rom_basis_payloads())
    return tuple(sorted(payloads))


@pytest.fixture(scope="module")
def rom_serial_reference(tmp_path_factory, rom_payloads):
    """Serial warm-started reduced-order campaign: the ROM conformance
    reference."""
    root = tmp_path_factory.mktemp("rom_serial_store")
    report = CampaignRunner(
        MATRIX,
        store=ArtifactStore(root),
        executor="serial",
        transient_method="auto",
        warm_start=rom_payloads,
    ).run()
    return report, store_object_digests(root)


class TestRomWarmStartConformance:
    """The reduced-order transient path must not break substrate parity.

    Warm-start payloads are part of the kernel value, so every worker —
    in-process or in a pool — installs the identical bases and the reduced
    integration stays byte-deterministic whatever the process topology.
    """

    @pytest.fixture(scope="module", autouse=True)
    def _clean_registry(self):
        # In-process executors install the payloads into this process's
        # global registry; drop them when the module is done.
        yield
        clear_installed_bases()

    @pytest.mark.parametrize("executor_id", sorted(EXECUTORS))
    def test_rom_report_and_store_parity(
        self, executor_id, rom_serial_reference, rom_payloads, tmp_path
    ):
        reference, reference_objects = rom_serial_reference
        store = ArtifactStore(tmp_path / "store")
        report = CampaignRunner(
            MATRIX,
            store=store,
            executor=EXECUTORS[executor_id](),
            transient_method="auto",
            warm_start=rom_payloads,
        ).run()
        assert report.to_json() == reference.to_json()
        assert store_object_digests(tmp_path / "store") == reference_objects
        # The reduced path genuinely ran: every artifact was integrated in
        # the reduced space, none fell back.
        assert report.engine["transient_rom_solves"] == len(MATRIX.points())
        assert report.engine["rom_fallbacks"] == 0
        for artifact in report.artifacts.values():
            assert artifact["results"]["transient"]["solver"]["method"] == "rom"

    def test_rom_store_does_not_answer_lu_requests(
        self, rom_serial_reference, rom_payloads, tmp_path
    ):
        """Artifacts computed by different transient numerics have different
        store keys, so a ROM-populated store never serves an LU campaign."""
        store = ArtifactStore(tmp_path / "store")
        CampaignRunner(
            MATRIX,
            store=store,
            executor="serial",
            transient_method="auto",
            warm_start=rom_payloads,
        ).run()
        lu_report = CampaignRunner(
            MATRIX, store=ArtifactStore(tmp_path / "store"), executor="serial"
        ).run()
        assert lu_report.summary["store_hits"] == 0
        assert lu_report.summary["store_misses"] == len(MATRIX.points())


class TestKernel:
    def test_kernel_is_picklable_and_deterministic(self):
        kernel = EvaluationKernel(("steady",))
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone == kernel
        spec_dict = FAULT_MATRIX.points()[0].spec.to_dict()
        first_artifact, first_stats, first_payload = kernel.run(spec_dict)
        second_artifact, second_stats, second_payload = clone.run(spec_dict)
        assert first_artifact == second_artifact
        assert first_stats == second_stats
        # Telemetry is off by default: no payload, no artifact pollution.
        assert first_payload is None and second_payload is None
        assert "telemetry" not in first_artifact["results"]

    def test_kernel_telemetry_payload(self):
        """An enabled kernel returns a span payload without flipping the
        module switch for the rest of the process."""
        kernel = EvaluationKernel(("steady",), telemetry=True)
        spec_dict = FAULT_MATRIX.points()[0].spec.to_dict()
        assert not telemetry.is_enabled()
        artifact, _, payload = kernel.run(spec_dict)
        assert not telemetry.is_enabled()
        document = json.loads(payload)
        names = [record["name"] for record in document["spans"]]
        assert f"spec:{spec_dict['name']}" in names
        assert "path.steady" in names
        assert artifact["results"]["telemetry"]["paths_s"].keys() == {"steady"}

    def test_kernel_validates_paths(self):
        with pytest.raises(ConfigurationError, match="unknown analysis"):
            EvaluationKernel(("bogus",))
        with pytest.raises(ConfigurationError, match="at least one"):
            EvaluationKernel(())

    def test_make_executor_registry(self):
        assert make_executor(None).name == "serial"
        assert make_executor(None, workers=4).name == "process"
        assert make_executor("async", workers=3).concurrency == 3
        assert make_executor("queue", workers=1).workers == 1
        passthrough = SerialExecutor()
        assert make_executor(passthrough) is passthrough
        with pytest.raises(ConfigurationError, match="unknown executor"):
            make_executor("carrier-pigeon")
        with pytest.raises(ConfigurationError, match="workers >= 1"):
            ProcessExecutor(0)
        with pytest.raises(ConfigurationError, match="max_retries"):
            QueueExecutor(max_retries=-1)
        with pytest.raises(ConfigurationError, match="timeout_s"):
            QueueExecutor(timeout_s=0.0)

    def test_runner_rejects_unknown_executor_and_on_error(self):
        with pytest.raises(ConfigurationError, match="unknown executor"):
            CampaignRunner(MATRIX, executor="bogus")
        with pytest.raises(ConfigurationError, match="on_error"):
            CampaignRunner(MATRIX, on_error="ignore")


def _work_items(count=1):
    """The first ``count`` fault-matrix points as raw work items."""
    items = []
    for index, point in enumerate(FAULT_MATRIX.points()[:count]):
        items.append(
            WorkItem(
                index=index,
                name=point.spec.name,
                spec_hash=point.spec.content_hash(),
                design_hash=point.spec.design_hash(),
                spec_dict=point.spec.to_dict(),
            )
        )
    return items


class TestAsyncExecutorLoopContext:
    """Satellite fix: AsyncExecutor from inside a running event loop.

    The generator-based ``execute`` used to die mid-iteration with asyncio's
    raw ``RuntimeError: asyncio.run() cannot be called from a running event
    loop``.  The contract now: ``execute_async`` is awaitable on the host
    loop (what ``repro serve`` does), and the sync ``execute`` fails *at
    call time* with a :class:`ConfigurationError` naming the fix when a
    loop is already running.
    """

    def test_execute_async_awaitable_inside_running_loop(self):
        kernel = EvaluationKernel(("steady",))

        async def main():
            executor = AsyncExecutor(concurrency=2)
            return await executor.execute_async(kernel, _work_items(2))

        results = asyncio.run(main())
        assert [result.ok for result in results] == [True, True]
        assert [result.item.index for result in results] == [0, 1]

    def test_sync_execute_in_running_loop_raises_configuration_error(self):
        kernel = EvaluationKernel(("steady",))
        executor = AsyncExecutor(concurrency=1)

        async def main():
            with pytest.raises(ConfigurationError, match="execute_async"):
                executor.execute(kernel, _work_items())

        asyncio.run(main())

    def test_execute_async_matches_sync_execute(self):
        kernel = EvaluationKernel(("steady",))
        items = _work_items(2)
        sync_results = list(AsyncExecutor(concurrency=2).execute(kernel, items))
        async_results = asyncio.run(
            AsyncExecutor(concurrency=2).execute_async(kernel, items)
        )
        assert [r.artifact for r in sync_results] == [
            r.artifact for r in async_results
        ]

    def test_failures_come_back_as_results_not_exceptions(self):
        """execute_async reports a failing spec in its ExecutionResult —
        the service depends on the loop surviving poison specs."""

        class PoisonKernel(EvaluationKernel):
            def run(self, spec_dict):
                raise RuntimeError("poison spec, fails on every attempt")

        async def main():
            executor = AsyncExecutor(concurrency=2)
            return await executor.execute_async(
                PoisonKernel(("steady",)), _work_items()
            )

        (result,) = asyncio.run(main())
        assert not result.ok
        assert result.error == {
            "attempt": 1,
            "type": "RuntimeError",
            "message": "poison spec, fails on every attempt",
        }


@dataclass(frozen=True)
class FaultyKernel(EvaluationKernel):
    """Evaluation kernel with injectable worker faults (picklable).

    Fault state crosses process boundaries through marker files in
    ``marker_dir``: the *first* attempt of a listed spec misbehaves (crash /
    hang / transient error), later attempts run the pure kernel — except
    ``poison`` specs, which fail on every attempt.
    """

    crash: Tuple[str, ...] = ()
    hang: Tuple[str, ...] = ()
    transient_error: Tuple[str, ...] = ()
    poison: Tuple[str, ...] = ()
    marker_dir: str = ""

    def run(self, spec_dict):
        name = spec_dict["name"]
        if name in self.poison:
            raise RuntimeError("poison spec, fails on every attempt")
        if self._first_attempt(name):
            if name in self.crash:
                os._exit(13)  # simulated segfault/OOM-kill: no cleanup at all
            if name in self.hang:
                time.sleep(60.0)  # simulated hang; the deadline must fire
            if name in self.transient_error:
                raise pickle.PicklingError("transient pickling failure")
        return super().run(spec_dict)

    def _first_attempt(self, name: str) -> bool:
        marker = Path(self.marker_dir) / f"{name}.attempted"
        if marker.exists():
            return False
        marker.touch()
        return True


@pytest.fixture(scope="module")
def fault_reference():
    """Fault-free steady-only reference of the fault matrix."""
    return CampaignRunner(FAULT_MATRIX, paths=("steady",)).run()


def faulty_runner(kernel, **kwargs):
    executor = kwargs.pop(
        "executor", QueueExecutor(workers=2, max_retries=2)
    )
    return CampaignRunner(
        FAULT_MATRIX,
        paths=("steady",),
        kernel=kernel,
        executor=executor,
        **kwargs,
    )


class TestFaultInjection:
    """Queue-executor fault semantics: the acceptance scenario of the issue."""

    def test_two_worker_crashes_still_complete(
        self, fault_reference, tmp_path
    ):
        """Two killed workers: campaign completes, artifacts byte-correct,
        crash provenance recorded per spec."""
        kernel = FaultyKernel(
            paths=("steady",),
            crash=(FAULT_NAMES[0], FAULT_NAMES[2]),
            marker_dir=str(tmp_path),
        )
        report = faulty_runner(kernel).run()
        assert report.artifacts == fault_reference.artifacts
        assert sorted(report.failures) == sorted(
            [FAULT_NAMES[0], FAULT_NAMES[2]]
        )
        for name in (FAULT_NAMES[0], FAULT_NAMES[2]):
            provenance = report.failures[name]
            assert provenance["resolved"] is True
            assert provenance["attempts"] == 2
            assert provenance["incidents"][0]["type"] == "WorkerCrashed"
            assert provenance["design_hash"]
        assert report.summary["failed"] == 0

    def test_hung_worker_is_killed_and_retried(
        self, fault_reference, tmp_path
    ):
        kernel = FaultyKernel(
            paths=("steady",),
            hang=(FAULT_NAMES[1],),
            marker_dir=str(tmp_path),
        )
        start = time.monotonic()
        report = faulty_runner(
            kernel,
            executor=QueueExecutor(workers=2, max_retries=1, timeout_s=3.0),
        ).run()
        elapsed = time.monotonic() - start
        assert report.artifacts == fault_reference.artifacts
        incident = report.failures[FAULT_NAMES[1]]["incidents"][0]
        assert incident["type"] == "WorkerTimeout"
        assert report.failures[FAULT_NAMES[1]]["resolved"] is True
        # The hang was cut at the deadline, not waited out (60 s sleep).
        assert elapsed < 30.0

    def test_transient_error_is_retried(self, fault_reference, tmp_path):
        kernel = FaultyKernel(
            paths=("steady",),
            transient_error=(FAULT_NAMES[0],),
            marker_dir=str(tmp_path),
        )
        report = faulty_runner(kernel).run()
        assert report.artifacts == fault_reference.artifacts
        incident = report.failures[FAULT_NAMES[0]]["incidents"][0]
        assert incident["type"] == "PicklingError"

    def test_poison_spec_is_quarantined(self, fault_reference, tmp_path):
        kernel = FaultyKernel(
            paths=("steady",),
            poison=(FAULT_NAMES[1],),
            marker_dir=str(tmp_path),
        )
        report = faulty_runner(kernel, on_error="quarantine").run()
        provenance = report.failures[FAULT_NAMES[1]]
        assert provenance["resolved"] is False
        assert provenance["attempts"] == 3  # 1 + max_retries
        assert len(provenance["incidents"]) == 3
        assert report.summary["failed"] == 1
        # The healthy specs completed with correct artifacts regardless.
        assert sorted(report.artifacts) == sorted(
            [FAULT_NAMES[0], FAULT_NAMES[2]]
        )
        for name in (FAULT_NAMES[0], FAULT_NAMES[2]):
            assert report.artifacts[name] == fault_reference.artifacts[name]
        # The quarantined scenario still has a summary row (None metrics).
        rows = {row["name"]: row for row in report.summary_rows()}
        assert rows[FAULT_NAMES[1]]["worst_snr_db"] is None

    def test_partial_campaign_resume_from_store(
        self, fault_reference, tmp_path
    ):
        """A quarantined campaign resumes incrementally: the re-run serves
        completed specs from the store and only recomputes the failed one."""
        store_root = tmp_path / "store"
        kernel = FaultyKernel(
            paths=("steady",),
            poison=(FAULT_NAMES[1],),
            marker_dir=str(tmp_path),
        )
        first = faulty_runner(
            kernel,
            store=ArtifactStore(store_root),
            on_error="quarantine",
        ).run()
        assert first.summary["failed"] == 1
        # Re-run with the healthy kernel (the "fixed bug" case).
        resumed = CampaignRunner(
            FAULT_MATRIX,
            paths=("steady",),
            store=ArtifactStore(store_root),
            executor=QueueExecutor(workers=2),
        ).run()
        flags = {
            entry["name"]: entry["from_store"]
            for entry in resumed.scenarios
        }
        assert flags == {
            FAULT_NAMES[0]: True,
            FAULT_NAMES[1]: False,
            FAULT_NAMES[2]: True,
        }
        assert resumed.artifacts == fault_reference.artifacts
        assert resumed.summary["failed"] == 0

    def test_raise_mode_carries_spec_provenance(self, tmp_path):
        """Satellite fix: a failing spec re-raises with name + design_hash."""
        kernel = FaultyKernel(
            paths=("steady",),
            poison=(FAULT_NAMES[1],),
            marker_dir=str(tmp_path),
        )
        expected = FAULT_MATRIX.points()[1].spec
        with pytest.raises(SpecExecutionError) as excinfo:
            faulty_runner(kernel, executor=SerialExecutor()).run()
        error = excinfo.value
        assert error.scenario == FAULT_NAMES[1]
        assert error.design_hash == expected.design_hash()
        assert FAULT_NAMES[1] in str(error)
        assert expected.design_hash()[:12] in str(error)
        assert "RuntimeError" in str(error)

    def test_process_pool_crash_carries_spec_provenance(self, tmp_path):
        """A worker killed under the plain process pool still names its
        spec: BrokenProcessPool is attributed to the item that died."""
        kernel = FaultyKernel(
            paths=("steady",),
            crash=(FAULT_NAMES[0],),
            marker_dir=str(tmp_path),
        )
        with pytest.raises(SpecExecutionError) as excinfo:
            faulty_runner(kernel, executor=ProcessExecutor(workers=2)).run()
        assert excinfo.value.scenario == FAULT_NAMES[0]
        assert excinfo.value.design_hash
