"""Tests for the transient flow integration, engine caching and SNR chaining."""

import dataclasses

import numpy as np
import pytest

from repro import (
    LaserDriveConfig,
    OniPowerConfig,
    SimulationSettings,
    SweepEngine,
    ThermalAwareDesignFlow,
    TransientRequest,
    build_oni_ring_scenario,
    build_scc_architecture,
    uniform_activity,
)
from repro.activity import ActivityTrace, SyntheticTraceGenerator
from repro.errors import ConfigurationError
from repro.methodology import transient_request_key

#: Coarse resolutions keep the whole module in a few seconds.
FAST_SETTINGS = SimulationSettings(
    oni_cell_size_um=500.0, die_cell_size_um=3000.0, zoom_cell_size_um=25.0
)


@pytest.fixture(scope="module")
def flow():
    architecture = build_scc_architecture(settings=FAST_SETTINGS)
    scenario = build_oni_ring_scenario(architecture, ring_length_mm=18.0, oni_count=6)
    return ThermalAwareDesignFlow(architecture, scenario)


@pytest.fixture(scope="module")
def power():
    return OniPowerConfig(vcsel_power_w=3.6e-3).with_heater_ratio(0.3)


@pytest.fixture(scope="module")
def ramp_trace(flow):
    generator = SyntheticTraceGenerator(flow.architecture.floorplan)
    return generator.ramp_trace(10.0, 25.0, phases=3, phase_duration_s=1.0)


class TestBuildSchedule:
    def test_schedule_follows_phases(self, flow, ramp_trace, power):
        schedule = flow.build_schedule(ramp_trace, power)
        assert len(schedule) == len(ramp_trace)
        assert schedule.total_duration_s == pytest.approx(
            ramp_trace.total_duration_s
        )
        # Every segment carries both the chip activity and the ONI devices.
        for segment, phase in zip(schedule, ramp_trace):
            groups = {source.group for source in segment.sources}
            assert "chip" in groups and "vcsel" in groups
            chip_power = sum(
                source.power_w for source in segment.sources if source.group == "chip"
            )
            assert chip_power == pytest.approx(phase.activity.total_power_w)

    def test_empty_trace_rejected(self, flow):
        with pytest.raises(ConfigurationError, match="no phases"):
            flow.build_schedule(ActivityTrace(name="empty"))

    def test_trace_to_schedule_helper(self, flow, ramp_trace):
        z_min, z_max = flow.architecture.electrical_z_range()
        extra = flow.scenario.onis[0].heat_sources(
            flow.architecture.optical_z_range()
        )
        schedule = ramp_trace.to_schedule(
            flow.architecture.floorplan, z_min, z_max, static_sources=extra
        )
        assert len(schedule) == len(ramp_trace)
        for segment in schedule:
            names = {source.name for source in segment.sources}
            assert {source.name for source in extra} <= names


class TestRunTransient:
    def test_steady_initial_matches_thermal_step(self, flow, ramp_trace, power):
        evaluation = flow.run_transient(
            ramp_trace, power, dt_s=0.5, initial="steady"
        )
        reference = flow.run_thermal(
            ramp_trace.phases[0].activity, power=power, zoom_oni=None
        )
        for name, summary in reference.oni_summaries.items():
            state = evaluation.oni_series[name].state_at(0)
            assert state.average_temperature_c == pytest.approx(
                summary.average_c, abs=1e-9
            )
            assert state.laser_c == pytest.approx(summary.laser_c, abs=1e-9)
            assert state.microring_c == pytest.approx(
                summary.microring_c, abs=1e-9
            )

    def test_long_horizon_settles_on_final_phase_steady_state(self, flow, power):
        """Acceptance: flow-level transient converges to the steady flow."""
        activity = uniform_activity(flow.architecture.floorplan, 25.0)
        trace = ActivityTrace(name="hold")
        trace.add_phase(activity, 400.0)
        evaluation = flow.run_transient(trace, power, dt_s=10.0)
        reference = flow.run_thermal(activity, power=power, zoom_oni=None)
        for name, summary in reference.oni_summaries.items():
            final = evaluation.oni_series[name].final_average_c
            assert final == pytest.approx(summary.average_c, abs=0.05)

    def test_request_object_and_snapshots(self, flow, ramp_trace, power):
        request = TransientRequest(
            trace=ramp_trace,
            power=power,
            dt_s=0.5,
            snapshot_times_s=(0.0, ramp_trace.total_duration_s),
        )
        evaluation = flow.run_transient(request)
        assert len(evaluation.result.snapshots) == 2
        assert evaluation.times_s[0] == 0.0
        assert evaluation.times_s[-1] == pytest.approx(
            ramp_trace.total_duration_s
        )
        assert evaluation.max_oni_temperature_c > 35.0
        name = next(iter(evaluation.oni_series))
        assert evaluation.time_above_c(name, 0.0) == pytest.approx(
            ramp_trace.total_duration_s
        )

    def test_invalid_initial_rejected(self, ramp_trace):
        with pytest.raises(ConfigurationError, match="initial"):
            TransientRequest(trace=ramp_trace, initial="bogus")

    def test_snapshot_times_coerced_to_tuple(self, ramp_trace):
        # A list must not leak into the (hashable) engine cache key.
        request = TransientRequest(trace=ramp_trace, snapshot_times_s=[0.0, 1.0])
        assert request.snapshot_times_s == (0.0, 1.0)
        hash(transient_request_key(request))

    def test_factorizations_shared_across_traces(self, flow, ramp_trace, power):
        first = flow.run_transient(ramp_trace, power, dt_s=0.5)
        second = flow.run_transient(
            ramp_trace, power.with_heater_ratio(0.1), dt_s=0.5
        )
        assert second.result.diagnostics.factorizations_computed == 0
        assert first.result.diagnostics.steps == second.result.diagnostics.steps


class TestTransientSnr:
    def test_time_series_shapes_and_aggregates(self, flow, ramp_trace, power):
        evaluation = flow.run_transient(ramp_trace, power, dt_s=0.5, initial="steady")
        drive = LaserDriveConfig.from_dissipated_mw(3.6)
        series = flow.run_transient_snr(evaluation, drive)
        assert series.times_s.size == evaluation.times_s.size
        assert series.snr_db.shape == (series.times_s.size, len(series.link_names))
        worst = series.worst_over_time_db()
        assert set(worst) == set(series.link_names)
        column_minima = np.min(series.snr_db, axis=0)
        for name, value in zip(series.link_names, column_minima):
            assert worst[name] == pytest.approx(float(value))
        assert series.overall_worst_snr_db == pytest.approx(
            float(np.min(series.snr_db))
        )
        time_at, link, value = series.worst_sample()
        assert link in series.link_names
        assert value == pytest.approx(series.overall_worst_snr_db)
        assert 0.0 <= time_at <= evaluation.times_s[-1]

    def test_time_below_floor_accounting(self, flow, ramp_trace, power):
        evaluation = flow.run_transient(ramp_trace, power, dt_s=0.5, initial="steady")
        drive = LaserDriveConfig.from_dissipated_mw(3.6)
        series = flow.run_transient_snr(evaluation, drive)
        total = evaluation.times_s[-1]
        below_all = series.time_below_floor_s(float("inf"))
        assert all(value == pytest.approx(total) for value in below_all.values())
        assert series.any_time_below_floor_s(float("inf")) == pytest.approx(total)
        below_none = series.time_below_floor_s(float("-inf"))
        assert all(value == 0.0 for value in below_none.values())

    def test_stride_keeps_final_sample(self, flow, ramp_trace, power):
        evaluation = flow.run_transient(ramp_trace, power, dt_s=0.5, initial="steady")
        drive = LaserDriveConfig.from_dissipated_mw(3.6)
        series = flow.run_transient_snr(evaluation, drive, stride=4)
        assert series.times_s[-1] == pytest.approx(evaluation.times_s[-1])
        assert series.times_s.size < evaluation.times_s.size
        with pytest.raises(ConfigurationError):
            flow.run_transient_snr(evaluation, drive, stride=0)

    def test_matches_steady_snr_when_settled(self, flow, power):
        """After a long hold the time-resolved SNR equals the steady SNR."""
        activity = uniform_activity(flow.architecture.floorplan, 25.0)
        trace = ActivityTrace(name="hold")
        trace.add_phase(activity, 400.0)
        evaluation = flow.run_transient(trace, power, dt_s=10.0)
        drive = LaserDriveConfig.from_dissipated_mw(3.6)
        series = flow.run_transient_snr(evaluation, drive, stride=10_000)
        thermal = flow.run_thermal(activity, power=power, zoom_oni=None)
        steady = flow.run_snr(thermal, drive)
        final = series.batch.report(series.batch.batch_size - 1)
        for steady_link, final_link in zip(steady.links, final.links):
            assert final_link.snr_db == pytest.approx(steady_link.snr_db, abs=0.1)


class TestEngineTransientCache:
    def test_identical_requests_solved_once(self, flow, ramp_trace, power):
        engine = SweepEngine(flow)
        request = TransientRequest(trace=ramp_trace, power=power, dt_s=0.5)
        results = engine.evaluate_transient([request, request])
        assert results[0] is results[1]
        assert engine.stats.transient_points_requested == 2
        assert engine.stats.transient_solves == 1
        assert engine.stats.transient_cache_hits == 1
        again = engine.evaluate_transient_one(request)
        assert again is results[0]
        assert engine.stats.transient_cache_hits == 2
        assert engine.transient_cache_size == 1

    def test_different_settings_are_distinct_points(self, flow, ramp_trace, power):
        engine = SweepEngine(flow)
        base = TransientRequest(trace=ramp_trace, power=power, dt_s=0.5)
        finer = TransientRequest(trace=ramp_trace, power=power, dt_s=0.25)
        assert transient_request_key(base) != transient_request_key(finer)
        engine.evaluate_transient([base, finer])
        assert engine.stats.transient_solves == 2

    def test_generation_bump_invalidates(self, flow, ramp_trace, power):
        engine = SweepEngine(flow)
        request = TransientRequest(trace=ramp_trace, power=power, dt_s=0.5)
        engine.evaluate_transient([request])
        flow.invalidate_caches()
        engine.evaluate_transient([request])
        assert engine.stats.transient_solves == 2
        assert engine.stats.transient_cache_hits == 0

    def test_unknown_flow_key_rejected(self, flow, ramp_trace):
        engine = SweepEngine(flow)
        with pytest.raises(ConfigurationError, match="unknown flow key"):
            engine.evaluate_transient(
                [TransientRequest(trace=ramp_trace)], flow_key="nope"
            )

    def test_clear_cache_drops_transient_entries(self, flow, ramp_trace, power):
        engine = SweepEngine(flow)
        engine.evaluate_transient(
            [TransientRequest(trace=ramp_trace, power=power, dt_s=0.5)]
        )
        assert engine.transient_cache_size == 1
        engine.clear_cache()
        assert engine.transient_cache_size == 0


class TestRomProvenance:
    def test_method_is_validated_and_part_of_the_key(self, ramp_trace, power):
        base = TransientRequest(trace=ramp_trace, power=power, dt_s=0.5)
        assert base.method == "lu"
        rom = TransientRequest(trace=ramp_trace, power=power, dt_s=0.5, method="rom")
        assert transient_request_key(base) != transient_request_key(rom)
        with pytest.raises(ConfigurationError, match="method"):
            TransientRequest(trace=ramp_trace, method="qr")

    def test_engine_counts_builds_and_organic_rom_hits(self, flow, ramp_trace, power):
        engine = SweepEngine(flow)
        build = TransientRequest(
            trace=ramp_trace, power=power, dt_s=0.5, method="rom"
        )
        first = engine.evaluate_transient_one(build)
        assert first.result.diagnostics.solver_method == "lu"
        assert first.result.diagnostics.rom_basis_built
        assert engine.stats.basis_builds == 1
        assert engine.stats.transient_lu_solves == 1
        assert engine.stats.transient_rom_solves == 0
        assert engine.stats.rom_hits == 0

        # Different instrumentation of the same physics: a distinct engine
        # cache entry, but the identical basis key — an organic ROM hit.
        replay_request = dataclasses.replace(build, snapshot_times_s=(0.0,))
        replay = engine.evaluate_transient_one(replay_request)
        assert replay.result.diagnostics.solver_method == "rom"
        assert engine.stats.transient_rom_solves == 1
        assert engine.stats.rom_hits == 1
        assert engine.stats.rom_fallbacks == 0
        assert engine.stats.basis_builds == 1

        # The flow exposes the harvested basis for persistence / warm-start.
        assert len(flow.rom_basis_payloads()) >= 1

    def test_run_transient_accepts_method_argument(self, flow, ramp_trace, power):
        evaluation = flow.run_transient(ramp_trace, power, dt_s=0.5, method="auto")
        assert evaluation.result.diagnostics.solver_method == "lu"
